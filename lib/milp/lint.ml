type severity = Error | Warn | Info

type diagnostic = {
  d_code : string;
  d_severity : severity;
  d_subject : string;
  d_message : string;
}

type stats = {
  s_rows : int;
  s_cols : int;
  s_nonzeros : int;
  s_binaries : int;
  s_integers : int;
  s_coeff_min : float;
  s_coeff_max : float;
  s_scaled_coeff_min : float;
  s_scaled_coeff_max : float;
}

type report = { diagnostics : diagnostic list; stats : stats }

type level = Off | Standard | Strict

type config = {
  cond_threshold : float;
  bigm_rel_slack : float;
  max_propagation_passes : int;
  structure : bool;
  tol : float;
}

let default_config =
  {
    cond_threshold = 1e10;
    bigm_rel_slack = 0.05;
    max_propagation_passes = 3;
    structure = true;
    tol = 1e-9;
  }

let level_of_strict strict = if strict then Strict else Standard

let severity_rank = function Error -> 0 | Warn -> 1 | Info -> 2

let severity_to_string = function Error -> "error" | Warn -> "warn" | Info -> "info"

(* ------------------------------------------------------------------ *)
(* Activity bounds with explicit infinity accounting                    *)
(* ------------------------------------------------------------------ *)

(* A directed activity bound is kept as (finite part, number of infinite
   contributions); subtracting one term's contribution — needed when
   propagating onto that term's variable — then stays exact. *)
type activity = { fin : float; inf : int }

let act_total a = if a.inf > 0 then None else Some a.fin

(* Activity of a row minus variable [v]'s contribution; [None] = infinite. *)
let act_without a contrib =
  if Float.is_finite contrib then if a.inf > 0 then None else Some (a.fin -. contrib)
  else if a.inf > 1 then None
  else Some a.fin

let min_contrib lb ub c = if c > 0. then c *. lb else c *. ub

let max_contrib lb ub c = if c > 0. then c *. ub else c *. lb

let row_activity ~lb ~ub terms =
  let amin = ref { fin = 0.; inf = 0 } and amax = ref { fin = 0.; inf = 0 } in
  Array.iter
    (fun (v, c) ->
      let lo = min_contrib lb.(v) ub.(v) c and hi = max_contrib lb.(v) ub.(v) c in
      (amin :=
         if Float.is_finite lo then { !amin with fin = !amin.fin +. lo }
         else { !amin with inf = !amin.inf + 1 });
      amax :=
        if Float.is_finite hi then { !amax with fin = !amax.fin +. hi }
        else { !amax with inf = !amax.inf + 1 })
    terms;
  (!amin, !amax)

(* ------------------------------------------------------------------ *)
(* The analyzer                                                         *)
(* ------------------------------------------------------------------ *)

type ctx = { problem : Problem.t; config : config; mutable diags : diagnostic list }

let emit ctx code severity subject fmt =
  Printf.ksprintf
    (fun msg ->
      ctx.diags <-
        { d_code = code; d_severity = severity; d_subject = subject; d_message = msg }
        :: ctx.diags)
    fmt

(* Subject string listing up to five names. *)
let subjects names =
  let shown = List.filteri (fun i _ -> i < 5) names in
  let extra = List.length names - List.length shown in
  String.concat ", " shown ^ if extra > 0 then Printf.sprintf " (+%d more)" extra else ""

let rel_tol tol x = tol *. Float.max 1. (abs_float x)

(* --- L103: non-finite data ----------------------------------------- *)

let check_finite ctx rows =
  let clean = ref true in
  let bad code subject fmt =
    clean := false;
    emit ctx code Error subject fmt
  in
  Problem.iter_vars
    (fun _ info ->
      if Float.is_nan info.Problem.v_lb || Float.is_nan info.Problem.v_ub then
        bad "L103" info.Problem.v_name "variable bound is NaN")
    ctx.problem;
  Array.iter
    (fun (name, terms, _sense, rhs) ->
      if not (Float.is_finite rhs) then bad "L103" name "right-hand side %g is not finite" rhs;
      Array.iter
        (fun (v, c) ->
          if not (Float.is_finite c) then
            bad "L103" name "coefficient %g on %s is not finite" c
              (Problem.var_info ctx.problem v).Problem.v_name)
        terms)
    rows;
  let _, obj = Problem.objective ctx.problem in
  List.iter
    (fun (v, c) ->
      if not (Float.is_finite c) then
        bad "L103"
          (Problem.var_info ctx.problem v).Problem.v_name
          "objective coefficient %g is not finite" c)
    (Linexpr.terms obj);
  !clean

(* --- Interval propagation ------------------------------------------ *)

(* One-directional bound tightening from row activities. Derived bounds
   are relaxed by a small epsilon before they are installed so that
   accumulated float error can never manufacture an infeasibility that
   the exact model does not have. *)
let propagate ctx rows lb ub =
  let p = ctx.problem in
  let n = Problem.num_vars p in
  let integer = Array.make n false in
  Problem.iter_vars
    (fun v info ->
      integer.(v) <-
        (match info.Problem.v_kind with
        | Problem.Integer | Problem.Binary -> true
        | Problem.Continuous -> false))
    p;
  let eps x = 1e-9 *. Float.max 1. (abs_float x) in
  let changed = ref true and pass = ref 0 in
  while !changed && !pass < ctx.config.max_propagation_passes do
    changed := false;
    incr pass;
    Array.iter
      (fun (_name, terms, sense, rhs) ->
        if Array.length terms > 0 then begin
          let amin, amax = row_activity ~lb ~ub terms in
          let tighten_ub v b =
            let b = if integer.(v) then Float.of_int (int_of_float (floor (b +. 1e-6))) else b in
            let b = b +. eps b in
            if b < ub.(v) -. eps b then begin
              ub.(v) <- Float.max b lb.(v);
              changed := true
            end
          in
          let tighten_lb v b =
            let b = if integer.(v) then Float.of_int (int_of_float (ceil (b -. 1e-6))) else b in
            let b = b -. eps b in
            if b > lb.(v) +. eps b then begin
              lb.(v) <- Float.min b ub.(v);
              changed := true
            end
          in
          (* sum_rest + c x <= rhs  (from Le / Eq rows) *)
          let from_le () =
            Array.iter
              (fun (v, c) ->
                match act_without amin (min_contrib lb.(v) ub.(v) c) with
                | None -> ()
                | Some rest ->
                  let b = (rhs -. rest) /. c in
                  if c > 0. then tighten_ub v b else tighten_lb v b)
              terms
          in
          (* sum_rest + c x >= rhs  (from Ge / Eq rows) *)
          let from_ge () =
            Array.iter
              (fun (v, c) ->
                match act_without amax (max_contrib lb.(v) ub.(v) c) with
                | None -> ()
                | Some rest ->
                  let b = (rhs -. rest) /. c in
                  if c > 0. then tighten_lb v b else tighten_ub v b)
              terms
          in
          match sense with
          | Problem.Le -> from_le ()
          | Problem.Ge -> from_ge ()
          | Problem.Eq ->
            from_le ();
            from_ge ()
        end)
      rows
  done

(* --- L101 / L102 / L202: row feasibility and redundancy ------------- *)

let check_rows ctx rows lb ub =
  let tol = ctx.config.tol in
  Array.iter
    (fun (name, terms, sense, rhs) ->
      let t = rel_tol tol rhs in
      if Array.length terms = 0 then begin
        let feasible =
          match sense with
          | Problem.Le -> 0. <= rhs +. t
          | Problem.Ge -> 0. >= rhs -. t
          | Problem.Eq -> abs_float rhs <= t
        in
        if feasible then
          emit ctx "L202" Warn name "empty row: all coefficients cancelled; 0 %s %g holds vacuously"
            (match sense with Problem.Le -> "<=" | Problem.Ge -> ">=" | Problem.Eq -> "=")
            rhs
        else emit ctx "L101" Error name "empty row is infeasible: 0 %s %g is false"
            (match sense with Problem.Le -> "<=" | Problem.Ge -> ">=" | Problem.Eq -> "=")
            rhs
      end
      else begin
        let amin, amax = row_activity ~lb ~ub terms in
        let minact = act_total amin and maxact = act_total amax in
        (* amin.inf counts -inf contributions, amax.inf counts +inf. *)
        let infeasible =
          match sense with
          | Problem.Le -> ( match minact with Some m -> m > rhs +. t | None -> false)
          | Problem.Ge -> ( match maxact with Some m -> m < rhs -. t | None -> false)
          | Problem.Eq -> (
            (match minact with Some m -> m > rhs +. t | None -> false)
            || match maxact with Some m -> m < rhs -. t | None -> false)
        in
        if infeasible then
          emit ctx "L101" Error name
            "trivially infeasible under propagated bounds (activity in [%s, %s], rhs %g)"
            (match minact with Some m -> Printf.sprintf "%g" m | None -> "-inf")
            (match maxact with Some m -> Printf.sprintf "%g" m | None -> "+inf")
            rhs
        else begin
          let redundant =
            match sense with
            | Problem.Le -> ( match maxact with Some m -> m <= rhs +. t | None -> false)
            | Problem.Ge -> ( match minact with Some m -> m >= rhs -. t | None -> false)
            | Problem.Eq -> (
              match (minact, maxact) with
              | Some lo, Some hi -> lo >= rhs -. t && hi <= rhs +. t
              | _ -> false)
          in
          if redundant then
            emit ctx "L102" Warn name
              "always slack: satisfied by every point in the bound box (activity in [%s, %s], rhs %g)"
              (match minact with Some m -> Printf.sprintf "%g" m | None -> "-inf")
              (match maxact with Some m -> Printf.sprintf "%g" m | None -> "+inf")
              rhs
        end
      end)
    rows

(* --- L201: dangling columns ---------------------------------------- *)

let check_dangling ctx rows =
  let p = ctx.problem in
  let used = Array.make (Problem.num_vars p) false in
  Array.iter (fun (_, terms, _, _) -> Array.iter (fun (v, _) -> used.(v) <- true) terms) rows;
  let _, obj = Problem.objective p in
  List.iter (fun (v, _) -> used.(v) <- true) (Linexpr.terms obj);
  let dangling = ref [] in
  Problem.iter_vars
    (fun v info -> if not used.(v) then dangling := info.Problem.v_name :: !dangling)
    p;
  let dangling = List.rev !dangling in
  if dangling <> [] then
    emit ctx "L201" Warn (subjects dangling)
      "%d dangling column(s): not referenced by any row or the objective"
      (List.length dangling)

(* --- L203: duplicate rows ------------------------------------------ *)

let check_duplicates ctx rows =
  let seen = Hashtbl.create 256 in
  let dups = ref [] in
  Array.iter
    (fun (name, terms, sense, rhs) ->
      if Array.length terms > 0 then begin
        let buf = Buffer.create 64 in
        Array.iter (fun (v, c) -> Buffer.add_string buf (Printf.sprintf "%d:%.17g;" v c)) terms;
        Buffer.add_string buf
          (Printf.sprintf "%s%.17g"
             (match sense with Problem.Le -> "<" | Problem.Ge -> ">" | Problem.Eq -> "=")
             rhs);
        let key = Buffer.contents buf in
        match Hashtbl.find_opt seen key with
        | Some first -> dups := Printf.sprintf "%s (= %s)" name first :: !dups
        | None -> Hashtbl.add seen key name
      end)
    rows;
  let dups = List.rev !dups in
  if dups <> [] then
    emit ctx "L203" Warn (subjects dups) "%d duplicate row(s): identical terms, sense and rhs"
      (List.length dups)

(* --- L301: per-row coefficient range -------------------------------- *)

(* Judged on the equilibrated matrix — the range the simplex actually
   faces. The raw staircase rows of a join-order encoding legitimately
   span 12+ orders of magnitude (deltas cover the cardinality range);
   that is precisely what Stdform's scaling absorbs, so flagging raw
   ranges would warn on every correct encoding. A row whose ratio
   survives equilibration is the real conditioning hazard. *)
let check_coeff_range ctx rows stdform =
  match stdform with
  | None -> ()
  | Some st ->
    let nrows = Array.length rows in
    let lo = Array.make nrows infinity and hi = Array.make nrows 0. in
    for j = 0 to st.Stdform.nstruct - 1 do
      Array.iter
        (fun (i, a) ->
          let v = abs_float a in
          if v > 0. then begin
            if v < lo.(i) then lo.(i) <- v;
            if v > hi.(i) then hi.(i) <- v
          end)
        st.Stdform.cols.(j)
    done;
    Array.iteri
      (fun i (name, terms, _, _) ->
        if Array.length terms > 1 && hi.(i) > 0.
           && hi.(i) /. lo.(i) > ctx.config.cond_threshold then
          emit ctx "L301" Warn name
            "equilibrated coefficient range %.2e .. %.2e (ratio %.1e) exceeds conditioning threshold %.0e"
            lo.(i) hi.(i)
            (hi.(i) /. lo.(i))
            ctx.config.cond_threshold)
      rows

(* --- L302 / L303 / L305: big-M audit -------------------------------- *)

(* A candidate is a Le/Ge row with exactly one binary-variable term and at
   least one other term. Writing the two effective right-hand sides
   (binary at 0 and at 1), the span between the relaxed and the enforced
   state is the provided big-M; the span the operand bounds require to
   make the relaxed state vacuous is the needed big-M. Audited against
   the *declared* bounds — the contract a generator derives its constant
   from; the propagated-bounds comparison is only an optimization hint
   (L305), because per-row interval reasoning cannot see the companion
   rows that make a smaller constant valid. *)
let audit_bigm ctx rows lb0 ub0 lbp ubp =
  let p = ctx.problem in
  let tol = ctx.config.tol in
  let is_binary v =
    match (Problem.var_info p v).Problem.v_kind with
    | Problem.Binary -> true
    | Problem.Integer | Problem.Continuous -> false
  in
  let tightenable = ref 0 and max_gain = ref 0. in
  Array.iter
    (fun (name, terms, sense, rhs) ->
      match sense with
      | Problem.Eq -> ()
      | Problem.Le | Problem.Ge ->
        let binaries = Array.to_list terms |> List.filter (fun (v, _) -> is_binary v) in
        (match binaries with
        | [ (bv, c) ] when Array.length terms >= 2 ->
          let rest = Array.of_list (Array.to_list terms |> List.filter (fun (v, _) -> v <> bv)) in
          let needed ~lb ~ub =
            (* Effective rhs at b = 0 and b = 1; the relaxed state is the
               weaker of the two. *)
            let rhs0 = rhs and rhs1 = rhs -. c in
            let amin, amax = row_activity ~lb ~ub rest in
            match sense with
            | Problem.Le ->
              let enforced = Float.min rhs0 rhs1 in
              (match act_total amax with
              | None -> None
              | Some hi -> Some (hi -. enforced))
            | Problem.Ge ->
              let enforced = Float.max rhs0 rhs1 in
              (match act_total amin with
              | None -> None
              | Some lo -> Some (enforced -. lo))
            | Problem.Eq -> None
          in
          let provided = abs_float c in
          (match needed ~lb:lb0 ~ub:ub0 with
          | None -> ()
          | Some need when need <= rel_tol tol rhs -> ()
          | Some need ->
            if provided < need -. rel_tol tol need then begin
              (* Only flag spans that look like an attempted big-M; a
                 genuinely small structural coefficient stays silent. *)
              if provided >= 0.5 *. need then
                emit ctx "L302" Error name
                  "insufficient big-M on %s: span %g < required %g — the relaxed state still cuts feasible points"
                  (Problem.var_info p bv).Problem.v_name provided need
            end
            else if provided > need *. (1. +. ctx.config.bigm_rel_slack) +. rel_tol tol need
            then
              emit ctx "L303" Warn name
                "loose big-M on %s: span %g exceeds the %g the declared bounds require"
                (Problem.var_info p bv).Problem.v_name provided need
            else begin
              (* Sufficient and tight against declared bounds; see if
                 propagation proves a smaller constant valid. *)
              match needed ~lb:lbp ~ub:ubp with
              | Some needp
                when needp > rel_tol tol rhs
                     && provided > needp *. (1. +. ctx.config.bigm_rel_slack) ->
                incr tightenable;
                max_gain := Float.max !max_gain (provided -. needp)
              | _ -> ()
            end)
        | _ -> ()))
    rows;
  if !tightenable > 0 then
    emit ctx "L305" Info ""
      "%d big-M span(s) tightenable under propagated bounds (largest reduction %g)" !tightenable
      !max_gain

(* --- L304: constant objective --------------------------------------- *)

let check_objective ctx =
  let _, obj = Problem.objective ctx.problem in
  if Linexpr.terms obj = [] then
    emit ctx "L304" Info "" "objective is constant: every feasible point is optimal"

(* ------------------------------------------------------------------ *)
(* Paper-invariant structural checks (metadata-keyed)                   *)
(* ------------------------------------------------------------------ *)

type meta_row = { m_terms : (int * float) list; m_sense : Problem.sense; m_rhs : float }

let structure_checks ctx rows =
  let p = ctx.problem in
  match Problem.find_meta p "joinopt.tables" with
  | None -> ()
  | Some tables_s ->
    let malformed = ref false in
    let meta_int key =
      match Problem.find_meta p key with
      | None -> None
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some v -> Some v
        | None ->
          malformed := true;
          emit ctx "L400" Error key "metadata value %S is not an integer" s;
          None)
    in
    let split c s = if s = "" then [] else String.split_on_char c s in
    let row_index = Hashtbl.create 256 in
    Array.iter
      (fun (name, terms, sense, rhs) ->
        if not (Hashtbl.mem row_index name) then
          Hashtbl.add row_index name
            { m_terms = Array.to_list terms; m_sense = sense; m_rhs = rhs })
      rows;
    let missing_rows = Hashtbl.create 8 in
    let add_missing code what =
      let cur = try Hashtbl.find missing_rows code with Not_found -> [] in
      Hashtbl.replace missing_rows code (what :: cur)
    in
    let require_row code ?sense ?rhs ?nterms ?unit_coeffs name =
      match Hashtbl.find_opt row_index name with
      | None -> add_missing code (name ^ " [missing]")
      | Some r ->
        let shape_ok =
          (match sense with Some s -> r.m_sense = s | None -> true)
          && (match rhs with Some v -> abs_float (r.m_rhs -. v) <= 1e-6 | None -> true)
          && (match nterms with Some k -> List.length r.m_terms = k | None -> true)
          &&
          match unit_coeffs with
          | Some true -> List.for_all (fun (_, c) -> abs_float (c -. 1.) <= 1e-9) r.m_terms
          | _ -> true
        in
        if not shape_ok then add_missing code (name ^ " [mis-shaped]")
    in
    let require_var code name =
      match Problem.var_by_name p name with
      | Some _ -> ()
      | None -> add_missing code (name ^ " [missing column]")
    in
    let row_coeff name var_name =
      match (Hashtbl.find_opt row_index name, Problem.var_by_name p var_name) with
      | Some r, Some v -> List.assoc_opt v r.m_terms
      | _ -> None
    in
    (match (meta_int "joinopt.tables", meta_int "joinopt.joins") with
    | Some n, Some joins when n >= 2 && joins = n - 1 ->
      let formulation =
        match Problem.find_meta p "joinopt.formulation" with
        | Some "reduced" -> `Reduced
        | Some "full-paper" -> `Full
        | Some s ->
          malformed := true;
          emit ctx "L400" Error "joinopt.formulation" "unknown formulation %S" s;
          `Reduced
        | None -> `Reduced
      in
      (* --- L401: join-order structure -------------------------------- *)
      require_row "L401" ~sense:Problem.Eq ~rhs:1. ~nterms:n ~unit_coeffs:true "outer0_single";
      for j = 0 to joins - 1 do
        require_row "L401" ~sense:Problem.Eq ~rhs:1. ~nterms:n ~unit_coeffs:true
          (Printf.sprintf "inner%d_single" j)
      done;
      (match formulation with
      | `Reduced ->
        for t = 0 to n - 1 do
          require_row "L401" ~sense:Problem.Le ~rhs:1. ~nterms:(joins + 1) ~unit_coeffs:true
            (Printf.sprintf "at_most_once_t%d" t)
        done
      | `Full ->
        for j = 0 to joins - 1 do
          for t = 0 to n - 1 do
            require_row "L401" ~sense:Problem.Le ~rhs:1.
              (Printf.sprintf "no_overlap_t%d_j%d" t j)
          done
        done;
        for j = 1 to joins - 1 do
          for t = 0 to n - 1 do
            require_row "L401" ~sense:Problem.Eq ~rhs:0. (Printf.sprintf "chain_t%d_j%d" t j)
          done
        done);
      (* --- L402: cardinality and selectivity links ------------------- *)
      let preds =
        match
          (Problem.find_meta p "joinopt.pred_tables", Problem.find_meta p "joinopt.log10_sels")
        with
        | Some pt, Some ls ->
          let tables_of =
            List.map
              (fun grp -> List.filter_map int_of_string_opt (split ',' grp))
              (split ';' pt)
          in
          let sels = List.filter_map float_of_string_opt (split ';' ls) in
          if List.length tables_of <> List.length sels then begin
            malformed := true;
            emit ctx "L400" Error "joinopt.pred_tables"
              "pred_tables declares %d predicate(s) but log10_sels %d"
              (List.length tables_of) (List.length sels);
            []
          end
          else List.combine tables_of sels
        | _ -> []
      in
      let thresholds = match meta_int "joinopt.thresholds" with Some l -> l | None -> 0 in
      for j = 0 to joins - 1 do
        require_row "L402" ~sense:Problem.Eq (Printf.sprintf "ci_def_j%d" j)
      done;
      for j = 1 to joins - 1 do
        require_row "L402" ~sense:Problem.Eq (Printf.sprintf "lco_def_j%d" j);
        require_row "L402" ~sense:Problem.Eq (Printf.sprintf "co_def_j%d" j);
        for r = 0 to thresholds - 1 do
          require_row "L402" ~sense:Problem.Le (Printf.sprintf "cto_def_r%d_j%d" r j)
        done;
        List.iteri
          (fun pi (ptables, sel) ->
            List.iter
              (fun t ->
                require_row "L402" ~sense:Problem.Le
                  (Printf.sprintf "applicable_p%d_t%d_j%d" pi t j))
              ptables;
            if abs_float sel > 1e-12 then begin
              let row = Printf.sprintf "lco_def_j%d" j in
              match row_coeff row (Printf.sprintf "pao_p%d_j%d" pi j) with
              | Some c when abs_float (c -. sel) <= rel_tol 1e-6 sel -> ()
              | Some c ->
                add_missing "L402"
                  (Printf.sprintf "%s [pao_p%d coeff %g, declared log10 sel %g]" row pi c sel)
              | None -> add_missing "L402" (Printf.sprintf "%s [no pao_p%d_j%d term]" row pi j)
            end)
          preds
      done;
      (* --- L403: expensive-predicate extension ----------------------- *)
      (match Problem.find_meta p "joinopt.ext.expensive" with
      | None -> ()
      | Some priced_s ->
        let priced = List.filter_map int_of_string_opt (split ',' priced_s) in
        for j = 0 to joins - 1 do
          require_var "L403" (Printf.sprintf "lcob_j%d" j);
          require_var "L403" (Printf.sprintf "cob_j%d" j);
          require_row "L403" ~sense:Problem.Eq (Printf.sprintf "lcob_def_j%d" j);
          require_row "L403" ~sense:Problem.Eq (Printf.sprintf "cob_def_j%d" j);
          for r = 0 to thresholds - 1 do
            require_row "L403" ~sense:Problem.Le (Printf.sprintf "ctob_def_r%d_j%d" r j)
          done;
          List.iter
            (fun pi ->
              require_var "L403" (Printf.sprintf "pco_p%d_j%d" pi j);
              require_var "L403" (Printf.sprintf "evalq_p%d_j%d" pi j);
              require_row "L403" ~sense:Problem.Eq (Printf.sprintf "pco_def_p%d_j%d" pi j))
            priced
        done);
      (* --- L404: join-orders extension -------------------------------- *)
      (match meta_int "joinopt.ext.orders" with
      | None -> ()
      | Some nv ->
        for j = 0 to joins - 1 do
          require_row "L404" ~sense:Problem.Eq ~rhs:1. ~nterms:nv ~unit_coeffs:true
            (Printf.sprintf "one_variant_j%d" j);
          require_var "L404" (Printf.sprintf "ohp_j%d" j);
          for i = 0 to nv - 1 do
            require_var "L404" (Printf.sprintf "jos_j%d_v%d" j i);
            require_var "L404" (Printf.sprintf "pjc_j%d_v%d" j i);
            require_row "L404" ~sense:Problem.Eq (Printf.sprintf "pjc_def_j%d_v%d" j i)
          done
        done);
      (* --- L405: projection extension ---------------------------------- *)
      (match meta_int "joinopt.ext.projection" with
      | None -> ()
      | Some nl ->
        for j = 1 to joins - 1 do
          for l = 0 to nl - 1 do
            require_var "L405" (Printf.sprintf "clo_l%d_j%d" l j);
            require_row "L405" ~sense:Problem.Le (Printf.sprintf "col_table_l%d_j%d" l j)
          done
        done)
    | Some n, Some joins ->
      malformed := true;
      emit ctx "L400" Error "joinopt.joins" "inconsistent declaration: %d tables, %d joins" n
        joins
    | _ ->
      if not !malformed then
        emit ctx "L400" Error "joinopt.tables" "metadata value %S is unusable" tables_s);
    Hashtbl.iter
      (fun code what ->
        let what = List.rev what in
        let kind =
          match code with
          | "L401" -> "join-order structure"
          | "L402" -> "selectivity/cardinality linking"
          | "L403" -> "expensive-predicate extension"
          | "L404" -> "join-orders extension"
          | "L405" -> "projection extension"
          | _ -> "structure"
        in
        emit ctx code Error (subjects what) "%s broken: %d declared row(s)/column(s) violated"
          kind (List.length what))
      missing_rows

(* ------------------------------------------------------------------ *)
(* Statistics and driver                                                *)
(* ------------------------------------------------------------------ *)

let compute_stats p rows stdform =
  let nonzeros = Array.fold_left (fun acc (_, t, _, _) -> acc + Array.length t) 0 rows in
  let binaries = ref 0 and integers = ref 0 in
  Problem.iter_vars
    (fun _ info ->
      match info.Problem.v_kind with
      | Problem.Binary -> incr binaries
      | Problem.Integer -> incr integers
      | Problem.Continuous -> ())
    p;
  let lo = ref infinity and hi = ref 0. in
  Array.iter
    (fun (_, terms, _, _) ->
      Array.iter
        (fun (_, c) ->
          let a = abs_float c in
          if a > 0. && Float.is_finite a then begin
            if a < !lo then lo := a;
            if a > !hi then hi := a
          end)
        terms)
    rows;
  let coeff_min, coeff_max = if !hi = 0. then (0., 0.) else (!lo, !hi) in
  let scaled_min, scaled_max =
    match stdform with None -> (0., 0.) | Some st -> Stdform.coeff_range st
  in
  {
    s_rows = Problem.num_constrs p;
    s_cols = Problem.num_vars p;
    s_nonzeros = nonzeros;
    s_binaries = !binaries;
    s_integers = !integers;
    s_coeff_min = coeff_min;
    s_coeff_max = coeff_max;
    s_scaled_coeff_min = scaled_min;
    s_scaled_coeff_max = scaled_max;
  }

let analyze ?(config = default_config) p =
  let rows =
    Array.init (Problem.num_constrs p) (fun i ->
        let c = Problem.constr_info p i in
        (c.Problem.c_name, Array.of_list (Linexpr.terms c.Problem.c_expr), c.Problem.c_sense,
         c.Problem.c_rhs))
  in
  let ctx = { problem = p; config; diags = [] } in
  let finite = check_finite ctx rows in
  let stdform =
    let nonzeros = Array.exists (fun (_, t, _, _) -> Array.length t > 0) rows in
    if finite && Problem.num_vars p > 0 && nonzeros then Some (Stdform.of_problem p) else None
  in
  if finite then begin
    let n = Problem.num_vars p in
    let lb0 = Array.make n 0. and ub0 = Array.make n 0. in
    Problem.iter_vars
      (fun v info ->
        lb0.(v) <- info.Problem.v_lb;
        ub0.(v) <- info.Problem.v_ub)
      p;
    let lbp = Array.copy lb0 and ubp = Array.copy ub0 in
    propagate ctx rows lbp ubp;
    check_rows ctx rows lbp ubp;
    audit_bigm ctx rows lb0 ub0 lbp ubp
  end;
  check_dangling ctx rows;
  check_duplicates ctx rows;
  check_coeff_range ctx rows stdform;
  check_objective ctx;
  if config.structure then structure_checks ctx rows;
  let diagnostics =
    List.stable_sort
      (fun a b -> compare (severity_rank a.d_severity) (severity_rank b.d_severity))
      (List.rev ctx.diags)
  in
  { diagnostics; stats = compute_stats p rows stdform }

let errors r =
  List.length (List.filter (fun d -> d.d_severity = Error) r.diagnostics)

let warnings r =
  List.length (List.filter (fun d -> d.d_severity = Warn) r.diagnostics)

let failed level r =
  match level with
  | Off -> false
  | Standard -> errors r > 0
  | Strict -> errors r > 0 || warnings r > 0

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s %-5s %s%s%s" d.d_code
    (severity_to_string d.d_severity)
    d.d_subject
    (if d.d_subject = "" then "" else ": ")
    d.d_message

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>model: %d rows, %d cols (%d bin, %d int), %d nonzeros; |coeff| %g..%g (scaled %g..%g)"
    r.stats.s_rows r.stats.s_cols r.stats.s_binaries r.stats.s_integers r.stats.s_nonzeros
    r.stats.s_coeff_min r.stats.s_coeff_max r.stats.s_scaled_coeff_min
    r.stats.s_scaled_coeff_max;
  List.iter (fun d -> Format.fprintf fmt "@,%a" pp_diagnostic d) r.diagnostics;
  Format.fprintf fmt "@]"
