type stats = { rounds : int; rows_removed : int; vars_fixed : int; bounds_tightened : int }

let pp_stats ppf s =
  Format.fprintf ppf "presolve: %d rounds, %d rows removed, %d vars fixed, %d bounds tightened"
    s.rounds s.rows_removed s.vars_fixed s.bounds_tightened

type outcome = Reduced of Problem.t * stats | Proven_infeasible of string

exception Infeasible of string

type row = { name : string; mutable expr : Linexpr.t; sense : Problem.sense; mutable rhs : float; mutable live : bool }

let feas_eps = 1e-9

let run ?(max_rounds = 10) ?budget p =
  let n = Problem.num_vars p in
  let lb = Array.make n 0. and ub = Array.make n 0. in
  let kind = Array.make n Problem.Continuous in
  Problem.iter_vars
    (fun v info ->
      lb.(v) <- info.Problem.v_lb;
      ub.(v) <- info.Problem.v_ub;
      kind.(v) <- info.Problem.v_kind)
    p;
  let rows = ref [] in
  Problem.iter_constrs
    (fun _ c ->
      rows :=
        { name = c.Problem.c_name; expr = c.Problem.c_expr; sense = c.Problem.c_sense; rhs = c.Problem.c_rhs; live = true }
        :: !rows)
    p;
  let rows = List.rev !rows in
  let rows_removed = ref 0 and vars_fixed = ref 0 and bounds_tightened = ref 0 in
  let substituted = Array.make n false in
  (* Round integer bounds inward; raise on empty domains. *)
  let round_integer_bounds v =
    match kind.(v) with
    | Problem.Integer | Problem.Binary ->
      let l = ceil (lb.(v) -. feas_eps) and u = floor (ub.(v) +. feas_eps) in
      if l > lb.(v) +. feas_eps then begin
        lb.(v) <- l;
        incr bounds_tightened
      end;
      if u < ub.(v) -. feas_eps then begin
        ub.(v) <- u;
        incr bounds_tightened
      end
    | Problem.Continuous -> ()
  in
  let tighten v ~new_lb ~new_ub =
    let changed = ref false in
    if new_lb > lb.(v) +. feas_eps then begin
      lb.(v) <- new_lb;
      incr bounds_tightened;
      changed := true
    end;
    if new_ub < ub.(v) -. feas_eps then begin
      ub.(v) <- new_ub;
      incr bounds_tightened;
      changed := true
    end;
    round_integer_bounds v;
    if lb.(v) > ub.(v) +. feas_eps then
      raise
        (Infeasible
           (Printf.sprintf "variable %s has empty domain [%g, %g]"
              (Problem.var_info p v).Problem.v_name lb.(v) ub.(v)));
    !changed
  in
  (* One presolve round; returns true when anything changed. *)
  let round () =
    let changed = ref false in
    (* Substitute newly fixed variables into live rows. *)
    let fixed_now = ref [] in
    for v = 0 to n - 1 do
      if (not substituted.(v)) && ub.(v) -. lb.(v) <= feas_eps then begin
        substituted.(v) <- true;
        incr vars_fixed;
        fixed_now := (v, lb.(v)) :: !fixed_now
      end
    done;
    if !fixed_now <> [] then changed := true;
    List.iter
      (fun (v, value) ->
        List.iter
          (fun r ->
            if r.live then begin
              let c = Linexpr.coeff r.expr v in
              if c <> 0. then begin
                r.expr <- Linexpr.add_term r.expr v (-.c);
                r.rhs <- r.rhs -. (c *. value)
              end
            end)
          rows)
      !fixed_now;
    (* Singleton and empty rows. *)
    List.iter
      (fun r ->
        if r.live then
          match Linexpr.terms r.expr with
          | [] ->
            let ok =
              match r.sense with
              | Problem.Le -> 0. <= r.rhs +. feas_eps
              | Problem.Ge -> 0. >= r.rhs -. feas_eps
              | Problem.Eq -> abs_float r.rhs <= feas_eps
            in
            if not ok then
              raise (Infeasible (Printf.sprintf "constraint %s reduced to a false fact" r.name));
            r.live <- false;
            incr rows_removed;
            changed := true
          | [ (v, a) ] ->
            let bound = r.rhs /. a in
            (match (r.sense, a > 0.) with
            | Problem.Le, true | Problem.Ge, false ->
              ignore (tighten v ~new_lb:neg_infinity ~new_ub:bound)
            | Problem.Ge, true | Problem.Le, false ->
              ignore (tighten v ~new_lb:bound ~new_ub:infinity)
            | Problem.Eq, _ -> ignore (tighten v ~new_lb:bound ~new_ub:bound));
            r.live <- false;
            incr rows_removed;
            changed := true
          | _ :: _ :: _ -> ())
      rows;
    !changed
  in
  match
    let rounds = ref 0 in
    for v = 0 to n - 1 do
      round_integer_bounds v;
      if lb.(v) > ub.(v) +. feas_eps then
        raise
          (Infeasible
             (Printf.sprintf "variable %s has empty integer domain"
                (Problem.var_info p v).Problem.v_name))
    done;
    let past_deadline () =
      match budget with Some b -> Budget.exhausted b | None -> false
    in
    let continue = ref true in
    while !continue && !rounds < max_rounds && not (past_deadline ()) do
      incr rounds;
      continue := round ()
    done;
    !rounds
  with
  | exception Infeasible msg -> Proven_infeasible msg
  | rounds ->
    (* Rebuild a problem with the tightened bounds and surviving rows. *)
    let reduced = Problem.create ~name:(Problem.name p ^ "+presolved") () in
    Problem.iter_vars
      (fun v info ->
        let l, u = (lb.(v), ub.(v)) in
        (* Guard against crossing caused only by eps noise. *)
        let l = min l u in
        ignore
          (Problem.add_var reduced ~name:info.Problem.v_name ~lb:l ~ub:u
             ~kind:info.Problem.v_kind ~priority:info.Problem.v_priority ()))
      p;
    List.iter
      (fun r ->
        if r.live then Problem.add_constr reduced ~name:r.name r.expr r.sense r.rhs)
      rows;
    let sense, obj = Problem.objective p in
    (* Fold fixed variables out of the objective (keeps simplex columns
       cold); the constant is preserved so objective values agree. *)
    let obj =
      List.fold_left
        (fun e (v, c) ->
          if substituted.(v) then
            Linexpr.add (Linexpr.add_term e v (-.c)) (Linexpr.const (c *. lb.(v)))
          else e)
        obj (Linexpr.terms obj)
    in
    Problem.set_objective reduced sense obj;
    Reduced
      (reduced,
       {
         rounds;
         rows_removed = !rows_removed;
         vars_fixed = !vars_fixed;
         bounds_tightened = !bounds_tightened;
       })
