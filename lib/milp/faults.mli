(** Seeded fault injection for the MILP stack.

    Commercial solvers are hardened by decades of production failures;
    this module lets us manufacture those failures on demand so the
    resilience layer (certification, the recovery ladder, the optimizer's
    fallback rungs) can be exercised deterministically in tests.

    A {!plan} is installed globally ({!install} / {!clear}); the hooks
    below are called from {!Simplex} and {!Sparse_lu} at their natural
    failure points. Every hook first reads a single [bool ref], so the
    cost with no plan installed is one load and branch — effectively
    zero on the simplex's hot paths.

    All randomness comes from a splitmix-style generator seeded by the
    plan, so a given plan replays the identical fault sequence under a
    serial solve. The hooks are domain-safe: with the parallel branch &
    bound they fire concurrently from worker domains, and the generator
    and counters are guarded by a mutex — the injected fault *sites*
    then depend on domain interleaving, but counters stay exact and the
    process stays crash-free. *)

exception Injected_abort
(** Raised by service-layer code when {!request_aborts} fires — a
    deterministic stand-in for "this request's handler died mid-flight"
    that flight cleanup and the server's retry ladder must absorb. *)

type plan = {
  f_seed : int;
  f_pivot_reject : float;
  (** probability of vetoing an otherwise acceptable simplex pivot,
      forcing refactorization churn and eventual numerical failure *)
  f_refactor_fail_every : int;
  (** fail every k-th basis factorization with {!Sparse_lu.Singular};
      [0] disables *)
  f_perturb : float;
  (** relative magnitude of noise injected into ftran'd entering
      columns — simulates numeric drift of the basis inverse; [0.]
      disables *)
  f_early_timeout : float;
  (** probability, per deadline check, of pretending the clock ran out —
      simulates deadline pressure / clock skew; [0.] disables *)
  f_corrupt_objective : float;
  (** probability of replacing a returned LP objective value with NaN —
      simulates overflow in the objective accumulation; [0.] disables *)
  f_checkpoint_corrupt : float;
  (** probability of flipping bits in a checkpoint payload as it is
      written — simulates silent media corruption; the checksum must
      catch it at load; [0.] disables *)
  f_checkpoint_truncate : float;
  (** probability of truncating a checkpoint payload to half its length
      as it is written — simulates a crash mid-write that the atomic
      rename did not protect against; [0.] disables *)
  f_cancel_after_nodes : int;
  (** request cooperative cancellation after this many branch & bound
      node visits — simulates a user hitting Ctrl-C mid-search at a
      deterministic point; fires exactly once; [0] disables *)
  f_snapshot_corrupt : float;
  (** probability of flipping bits in a *service snapshot* payload (the
      plan-cache persistence path) as it is written; independent of
      [f_checkpoint_corrupt] so tests can damage one persistence path
      without the other; [0.] disables *)
  f_snapshot_truncate : float;
  (** probability of truncating a service snapshot payload to half its
      length mid-write — a crash the atomic rename did not cover; [0.]
      disables *)
  f_request_stall : float;
  (** seconds of injected stall per served request, applied inside the
      server's *request executor* (one worker, not the I/O loop) — a
      slow handler that must only occupy its own worker while other
      connections keep being served; [0.] disables *)
  f_abort_every : int;
  (** raise {!Injected_abort} out of every k-th guarded request handler
      (scheduler flights, server solve attempts) — exercises in-flight
      cleanup and the retry ladder; [0] disables *)
  f_warm_start_mangle : float;
  (** probability of corrupting a warm-start candidate assignment just
      before the branch & bound certifies it — simulates a stale cache
      entry or a buggy heuristic translation; the certification gate
      must reject it and fall back to a cold start; [0.] disables *)
  f_wedge_after : int;
  (** wedge the k-th polled request exactly once: {!request_wedge}
      returns [f_wedge_seconds] on that poll and the caller sleeps that
      long ignoring its budget — a solve stuck between cooperative
      cancellation checks, which only the server's watchdog can turn
      into an answer; [0] disables *)
  f_wedge_seconds : float;  (** how long the wedged request sleeps *)
  f_yield_every : int;
  (** schedule perturbation: make roughly every k-th {!yield_point} call
      spin on [Domain.cpu_relax] for a seed-dependent while. Yield
      points sit at the lock-shaped seams of the concurrent machinery
      (pool submit/drain, flight claim/publish, plan-cache touches,
      budget polls, response completion), so a seeded plan explores
      interleavings the unperturbed scheduler rarely produces — without
      changing any result a correctly synchronized path computes; [0]
      disables *)
  f_cluster_fail : float;
  (** probability of vetoing a cluster solve inside the decomposition
      driver ({!cluster_fails}) — the driver must degrade that cluster
      to its heuristic fallback plan and flag the stitched result,
      never lose the whole query; [0.] disables *)
}

val none : plan
(** Seed 0, every fault disabled. *)

val install : plan -> unit
(** Installs (replacing any previous plan) and resets the seeded
    generator and all counters. *)

val clear : unit -> unit

val with_plan : plan -> (unit -> 'a) -> 'a
(** [with_plan plan f] installs [plan], runs [f], and always {!clear}s —
    even when [f] raises — so a failing test cannot leak an active fault
    plan into later tests. *)

val is_enabled : unit -> bool

val installed : unit -> plan option

(** {2 Hooks} — called from the solver internals; each is a no-op
    returning the benign answer when no plan is installed. *)

val pivot_rejected : unit -> bool
val refactor_fails : unit -> bool
val perturb_vector : float array -> unit
val early_timeout : unit -> bool
val corrupt_objective : float -> float

val cancel_requested : unit -> bool
(** Polled once per branch & bound node; [true] exactly once, after
    [f_cancel_after_nodes] polls. *)

val mangle_checkpoint : bytes -> bytes
(** Applied to the serialized checkpoint payload just before it hits the
    disk (after the checksum over the honest payload is computed), so
    the injected damage is exactly what {!Checkpoint.load}'s
    verification must detect. *)

val mangle_snapshot : bytes -> bytes
(** Same damage engine as {!mangle_checkpoint}, but driven by the
    [f_snapshot_*] knobs — applied to service-layer snapshots (the plan
    cache's persistence envelope) instead of solver checkpoints. *)

val request_stall : unit -> float
(** Seconds a request executor should stall before handling its current
    request ([0.] when disabled) — the slow-handler fault point. The
    stall burns one worker, never the I/O loop: with more than one
    worker the other connections keep being answered, which is the
    regression the server's concurrency tests pin down. *)

val request_wedge : unit -> float
(** Seconds the current request should sleep *ignoring its budget*
    ([0.] almost always): fires exactly once, on the [f_wedge_after]-th
    poll. The watchdog, not the request's own deadline, must convert a
    wedged request into an honest error/degraded response. *)

val request_aborts : unit -> bool
(** Polled once per guarded request handler; [true] on every
    [f_abort_every]-th poll. Callers raise {!Injected_abort}. *)

val cluster_fails : unit -> bool
(** Polled once per cluster solve of a decomposed query; [true] with
    probability [f_cluster_fail]. The decomposition driver treats a
    firing as that cluster's solve having died: the cluster degrades to
    its heuristic fallback plan and the stitched result carries the
    degraded flag. *)

val mangle_warm_start : float array -> float array
(** Applied to a warm-start candidate assignment just before the branch
    & bound certifies it; when the fault fires, returns a damaged copy
    (one coordinate bumped off scale, one binary flipped) that the
    certification gate must reject. Returns the array unchanged when
    disabled. *)

val yield_point : unit -> unit
(** The schedule-perturbation fault point: a no-op (one load and branch)
    unless a plan with [f_yield_every > 0] is installed, in which case a
    seed-and-call-count-dependent subset of calls spins on
    [Domain.cpu_relax] before returning. Unlike every other hook this
    one never touches the plan mutex — serializing the callers would
    defeat the perturbation. *)

val yields_fired : unit -> int
(** How many {!yield_point} calls actually paused since {!install} —
    lets the race harness assert a perturbed run really was perturbed. *)

val fired : unit -> (string * int) list
(** Counters of faults actually injected since {!install}, keyed by hook
    name — lets tests assert a plan really exercised the target path.
    Includes a ["yield"] row when {!yield_point} fired. *)
