let product_binary_continuous p ?name ~binary ~continuous ~lb ~ub () =
  if not (Float.is_finite lb && Float.is_finite ub) then
    invalid_arg "Linearize.product_binary_continuous: bounds must be finite";
  if lb > ub then invalid_arg "Linearize.product_binary_continuous: lb > ub";
  let y = Problem.add_var p ?name ~lb:(min lb 0.) ~ub:(max ub 0.) () in
  let open Linexpr in
  (* y <= ub * b            (y = 0 when b = 0, y <= ub when b = 1) *)
  Problem.add_constr p (sub (var y) (var ~coeff:ub binary)) Problem.Le 0.;
  (* y >= lb * b; with lb = 0 the binary term cancels and the row would
     canonicalize to the bound y >= 0 already declared on y, so skip it. *)
  if Float.compare lb 0. <> 0 then
    Problem.add_constr p (sub (var y) (var ~coeff:lb binary)) Problem.Ge 0.;
  (* y <= x - lb * (1 - b), i.e. y - x - lb*b <= -lb  (y = x when b = 1) *)
  Problem.add_constr p
    (add (sub (var y) (var continuous)) (var ~coeff:(-.lb) binary))
    Problem.Le (-.lb);
  (* y >= x - ub * (1 - b), i.e. y - x - ub*b >= -ub *)
  Problem.add_constr p
    (add (sub (var y) (var continuous)) (var ~coeff:(-.ub) binary))
    Problem.Ge (-.ub);
  y

let bool_and p ?name bs =
  if bs = [] then invalid_arg "Linearize.bool_and: empty conjunction";
  let z = Problem.add_var p ?name ~kind:Problem.Binary () in
  List.iter (fun b -> Problem.add_constr p Linexpr.(sub (var z) (var b)) Problem.Le 0.) bs;
  let sum = List.fold_left (fun e b -> Linexpr.add_term e b 1.) Linexpr.zero bs in
  Problem.add_constr p
    (Linexpr.sub (Linexpr.var z) sum)
    Problem.Ge
    (1. -. float_of_int (List.length bs));
  z

let bool_or p ?name bs =
  if bs = [] then invalid_arg "Linearize.bool_or: empty disjunction";
  let z = Problem.add_var p ?name ~kind:Problem.Binary () in
  List.iter (fun b -> Problem.add_constr p Linexpr.(sub (var z) (var b)) Problem.Ge 0.) bs;
  let sum = List.fold_left (fun e b -> Linexpr.add_term e b 1.) Linexpr.zero bs in
  Problem.add_constr p (Linexpr.sub (Linexpr.var z) sum) Problem.Le 0.;
  z
