type t = {
  nrows : int;
  nstruct : int;
  ncols : int;
  cols : (int * float) array array;
  lb : float array;
  ub : float array;
  cost : float array;
  rhs : float array;
  integer : bool array;
  obj_const : float;
  maximize : bool;
  row_scale : float array;
  col_scale : float array;
}

(* Geometric-mean equilibration, rounded to powers of two. Join-ordering
   encodings mix coefficients from 1e-4 (log-selectivities) to 1e29
   (threshold staircase deltas); without scaling the simplex basis turns
   numerically singular within a few pivots. The simplex works entirely
   in scaled space; bounds and solutions cross the boundary in
   {!Simplex.solve}. *)
let equilibrate ~nrows ~nstruct ~ncols cols =
  let row_scale = Array.make nrows 1. in
  let col_scale = Array.make ncols 1. in
  let pow2 s = if s <= 0. || not (Float.is_finite s) then 1. else 2. ** Float.round (log s /. log 2.) in
  for _pass = 1 to 3 do
    (* Row pass: geometric mean of current scaled magnitudes per row. *)
    let log_sum = Array.make nrows 0. and count = Array.make nrows 0 in
    for j = 0 to nstruct - 1 do
      Array.iter
        (fun (i, a) ->
          let v = abs_float (a *. row_scale.(i) *. col_scale.(j)) in
          if v > 0. then begin
            log_sum.(i) <- log_sum.(i) +. log v;
            count.(i) <- count.(i) + 1
          end)
        cols.(j)
    done;
    for i = 0 to nrows - 1 do
      if count.(i) > 0 then begin
        let gm = exp (log_sum.(i) /. float_of_int count.(i)) in
        row_scale.(i) <- pow2 (row_scale.(i) /. gm)
      end
    done;
    (* Column pass. *)
    for j = 0 to nstruct - 1 do
      let log_sum = ref 0. and count = ref 0 in
      Array.iter
        (fun (i, a) ->
          let v = abs_float (a *. row_scale.(i) *. col_scale.(j)) in
          if v > 0. then begin
            log_sum := !log_sum +. log v;
            incr count
          end)
        cols.(j);
      if !count > 0 then begin
        let gm = exp (!log_sum /. float_of_int !count) in
        col_scale.(j) <- pow2 (col_scale.(j) /. gm)
      end
    done
  done;
  (* Clamp and give each logical column the inverse of its row scale so
     slack coefficients stay exactly 1. *)
  let clamp s = max (2. ** -40.) (min (2. ** 40.) s) in
  for i = 0 to nrows - 1 do
    row_scale.(i) <- clamp row_scale.(i)
  done;
  for j = 0 to nstruct - 1 do
    col_scale.(j) <- clamp col_scale.(j)
  done;
  for i = 0 to nrows - 1 do
    col_scale.(nstruct + i) <- 1. /. row_scale.(i)
  done;
  (row_scale, col_scale)

let of_problem p =
  let nstruct = Problem.num_vars p in
  let nrows = Problem.num_constrs p in
  let ncols = nstruct + nrows in
  let lb = Array.make ncols 0. and ub = Array.make ncols 0. in
  let cost = Array.make ncols 0. in
  let integer = Array.make ncols false in
  let rhs = Array.make nrows 0. in
  (* Accumulate structural columns as reversed (row, coeff) lists. *)
  let col_acc = Array.make nstruct [] in
  Problem.iter_vars
    (fun v info ->
      lb.(v) <- info.Problem.v_lb;
      ub.(v) <- info.Problem.v_ub;
      integer.(v) <-
        (match info.Problem.v_kind with
        | Problem.Integer | Problem.Binary -> true
        | Problem.Continuous -> false))
    p;
  Problem.iter_constrs
    (fun i c ->
      rhs.(i) <- c.Problem.c_rhs;
      List.iter
        (fun (v, coeff) -> col_acc.(v) <- (i, coeff) :: col_acc.(v))
        (Linexpr.terms c.Problem.c_expr);
      (* Logical variable bounds encode the constraint sense. *)
      let s = nstruct + i in
      (match c.Problem.c_sense with
      | Problem.Le ->
        lb.(s) <- 0.;
        ub.(s) <- infinity
      | Problem.Ge ->
        lb.(s) <- neg_infinity;
        ub.(s) <- 0.
      | Problem.Eq ->
        lb.(s) <- 0.;
        ub.(s) <- 0.))
    p;
  let cols =
    Array.init ncols (fun j ->
        if j < nstruct then Array.of_list (List.rev col_acc.(j)) else [| (j - nstruct, 1.) |])
  in
  let sense, obj = Problem.objective p in
  let maximize = sense = Problem.Maximize in
  let sign = if maximize then -1. else 1. in
  List.iter (fun (v, c) -> cost.(v) <- sign *. c) (Linexpr.terms obj);
  (* Scale the matrix, right-hand side and costs; bounds stay in user
     space (see the type's documentation). *)
  let row_scale, col_scale = equilibrate ~nrows ~nstruct ~ncols cols in
  let cols =
    Array.mapi
      (fun j col -> Array.map (fun (i, a) -> (i, a *. row_scale.(i) *. col_scale.(j))) col)
      cols
  in
  let rhs = Array.mapi (fun i b -> b *. row_scale.(i)) rhs in
  let cost = Array.mapi (fun j c -> c *. col_scale.(j)) cost in
  {
    nrows;
    nstruct;
    ncols;
    cols;
    lb;
    ub;
    cost;
    rhs;
    integer;
    obj_const = Linexpr.constant obj;
    maximize;
    row_scale;
    col_scale;
  }

let bounds t = (Array.copy t.lb, Array.copy t.ub)

let coeff_range t =
  let lo = ref infinity and hi = ref 0. in
  for j = 0 to t.nstruct - 1 do
    Array.iter
      (fun (_, a) ->
        let v = abs_float a in
        if v > 0. then begin
          if v < !lo then lo := v;
          if v > !hi then hi := v
        end)
      t.cols.(j)
  done;
  if !hi = 0. then (0., 0.) else (!lo, !hi)

let user_objective t z = if t.maximize then -.z +. t.obj_const else z +. t.obj_const

let internal_of_user t v = if t.maximize then -.(v -. t.obj_const) else v -. t.obj_const
