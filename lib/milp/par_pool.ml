type 'r completion = Ready of 'r | Claimed

type ('task, 'r) entry = Open of 'task | Running | Done of 'r

type ('task, 'r) t = {
  mu : Mutex.t;
  cv : Condition.t;
  (* Speculation order: workers claim the open task with the smallest
     key, mirroring the consumer's own node selection so results are
     ready when demanded. Entries are lazily deleted — a popped id whose
     state is no longer [Open] is simply skipped. *)
  queue : (int * 'task) Pqueue.t;
  state : (int, ('task, 'r) entry) Hashtbl.t;
  solve : 'task -> 'r;
  skip : 'task -> bool;
  mutable stop : bool;
  mutable speculated : int;
  mutable discarded : int;
  mutable domains : unit Domain.t list;
}

(* Find the best claimable task, blocking while the queue is empty.
   Called and returned with [mu] held. *)
let rec worker_next t =
  if t.stop then None
  else
    match Pqueue.pop t.queue with
    | None ->
      Condition.wait t.cv t.mu;
      worker_next t
    | Some (_, (id, task)) -> (
      match Hashtbl.find_opt t.state id with
      | Some (Open _) ->
        if t.skip task then begin
          (* Dominated by the published incumbent: the consumer is
             guaranteed to prune it too (its incumbent can only be at
             least as good by the time this id reaches the front), so
             the LP would be wasted work. *)
          Hashtbl.remove t.state id;
          t.discarded <- t.discarded + 1;
          worker_next t
        end
        else begin
          Hashtbl.replace t.state id Running;
          Some (id, task)
        end
      | Some Running | Some (Done _) | None -> worker_next t)

let worker t () =
  Mutex.lock t.mu;
  let rec loop () =
    match worker_next t with
    | None -> Mutex.unlock t.mu
    | Some (id, task) ->
      Mutex.unlock t.mu;
      (* Fault point while the entry is [Running] but unlocked: a
         concurrent demand must wait here, not recompute. *)
      Faults.yield_point ();
      let r = t.solve task in
      Mutex.lock t.mu;
      (match Hashtbl.find_opt t.state id with
      | Some Running ->
        Hashtbl.replace t.state id (Done r);
        t.speculated <- t.speculated + 1;
        (* Wake a consumer possibly blocked in [demand] (and idle
           workers, who re-check the queue and go back to sleep). *)
        Condition.broadcast t.cv
      | Some (Open _) | Some (Done _) | None -> ());
      loop ()
  in
  loop ()

let create ~workers ~solve ~skip =
  let t =
    {
      mu = Mutex.create ();
      cv = Condition.create ();
      queue = Pqueue.create ();
      state = Hashtbl.create 256;
      solve;
      skip;
      stop = false;
      speculated = 0;
      discarded = 0;
      domains = [];
    }
  in
  t.domains <- List.init (max 0 workers) (fun _ -> Domain.spawn (worker t));
  t

let offer t ~id ~key task =
  (* Schedule-perturbation fault point: delaying an offer races it
     against the consumer demanding (and claiming) the same id. *)
  Faults.yield_point ();
  Mutex.lock t.mu;
  Hashtbl.replace t.state id (Open task);
  Pqueue.push t.queue key (id, task);
  Condition.broadcast t.cv;
  Mutex.unlock t.mu

let demand t ~id =
  Faults.yield_point ();
  Mutex.lock t.mu;
  let rec get () =
    match Hashtbl.find_opt t.state id with
    | Some (Done r) ->
      Hashtbl.remove t.state id;
      Mutex.unlock t.mu;
      Ready r
    | Some Running ->
      (* A worker is mid-solve on exactly the task the consumer needs;
         the result lands shortly — waiting beats recomputing. *)
      Condition.wait t.cv t.mu;
      get ()
    | Some (Open _) ->
      (* Not yet picked up: claim it for the calling domain. The queue
         entry becomes stale and is skipped by lazy deletion. *)
      Hashtbl.remove t.state id;
      Mutex.unlock t.mu;
      Claimed
    | None ->
      (* Never offered, or discarded as dominated. *)
      Mutex.unlock t.mu;
      Claimed
  in
  get ()

let discard t ~id =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.state id with
  | Some (Open _) | Some (Done _) -> Hashtbl.remove t.state id
  | Some Running | None -> ());
  Mutex.unlock t.mu

let stats t =
  Mutex.lock t.mu;
  let r = (t.speculated, t.discarded) in
  Mutex.unlock t.mu;
  r

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu;
  List.iter Domain.join t.domains
