type var = int

type kind = Continuous | Integer | Binary

type sense = Le | Ge | Eq

type var_info = { v_name : string; v_lb : float; v_ub : float; v_kind : kind; v_priority : int }

type constr_info = { c_name : string; c_expr : Linexpr.t; c_sense : sense; c_rhs : float }

type objective_sense = Minimize | Maximize

type t = {
  p_name : string;
  vars : var_info Vecbuf.t;
  constrs : constr_info Vecbuf.t;
  mutable obj_sense : objective_sense;
  mutable obj : Linexpr.t;
  mutable name_index : (string, var) Hashtbl.t option;
  mutable meta : (string * string) list;  (* newest first; [set_meta] replaces *)
}

let dummy_var = { v_name = ""; v_lb = 0.; v_ub = 0.; v_kind = Continuous; v_priority = 0 }

let dummy_constr = { c_name = ""; c_expr = Linexpr.zero; c_sense = Eq; c_rhs = 0. }

let create ?(name = "milp") () =
  {
    p_name = name;
    vars = Vecbuf.create ~dummy:dummy_var;
    constrs = Vecbuf.create ~dummy:dummy_constr;
    obj_sense = Minimize;
    obj = Linexpr.zero;
    name_index = None;
    meta = [];
  }

let name t = t.p_name

let set_meta t key value = t.meta <- (key, value) :: List.remove_assoc key t.meta

let find_meta t key = List.assoc_opt key t.meta

let meta_bindings t = List.rev t.meta

let add_var t ?name ?(lb = 0.) ?(ub = infinity) ?(kind = Continuous) ?(priority = 0) () =
  let lb, ub =
    match kind with Binary -> (max lb 0., min ub 1.) | Continuous | Integer -> (lb, ub)
  in
  if lb > ub then invalid_arg "Problem.add_var: lb > ub";
  let idx = Vecbuf.length t.vars in
  let v_name = match name with Some n -> n | None -> Printf.sprintf "x%d" idx in
  t.name_index <- None;
  Vecbuf.push t.vars { v_name; v_lb = lb; v_ub = ub; v_kind = kind; v_priority = priority }

let add_constr t ?name lhs sense rhs =
  let k = Linexpr.constant lhs in
  let expr = Linexpr.sub lhs (Linexpr.const k) in
  let idx = Vecbuf.length t.constrs in
  let c_name = match name with Some n -> n | None -> Printf.sprintf "c%d" idx in
  ignore (Vecbuf.push t.constrs { c_name; c_expr = expr; c_sense = sense; c_rhs = rhs -. k })

let set_objective t sense e =
  t.obj_sense <- sense;
  t.obj <- e

let set_bounds t v ~lb ~ub =
  if lb > ub then invalid_arg "Problem.set_bounds: lb > ub";
  let info = Vecbuf.get t.vars v in
  Vecbuf.set t.vars v { info with v_lb = lb; v_ub = ub }

let set_priority t v p =
  let info = Vecbuf.get t.vars v in
  Vecbuf.set t.vars v { info with v_priority = p }

let num_vars t = Vecbuf.length t.vars

let num_constrs t = Vecbuf.length t.constrs

let var_info t v = Vecbuf.get t.vars v

let constr_info t i = Vecbuf.get t.constrs i

let objective t = (t.obj_sense, t.obj)

let iter_constrs f t = Vecbuf.iteri f t.constrs

let iter_vars f t = Vecbuf.iteri f t.vars

let var_by_name t n =
  let index =
    match t.name_index with
    | Some index -> index
    | None ->
      let index = Hashtbl.create (num_vars t) in
      (* Insert in reverse so that the first occurrence of a name wins. *)
      for i = num_vars t - 1 downto 0 do
        Hashtbl.replace index (Vecbuf.get t.vars i).v_name i
      done;
      t.name_index <- Some index;
      index
  in
  Hashtbl.find_opt index n

let eval_objective t value = Linexpr.eval value t.obj

let check_feasible ?(tol = 1e-6) t value =
  let violation = ref None in
  let report msg = if !violation = None then violation := Some msg in
  iter_vars
    (fun v info ->
      let x = value v in
      if x < info.v_lb -. tol || x > info.v_ub +. tol then
        report (Printf.sprintf "variable %s = %g outside [%g, %g]" info.v_name x info.v_lb info.v_ub);
      match info.v_kind with
      | Integer | Binary ->
        if abs_float (x -. Float.round x) > tol then
          report (Printf.sprintf "variable %s = %g not integral" info.v_name x)
      | Continuous -> ())
    t;
  iter_constrs
    (fun _ c ->
      let lhs = Linexpr.eval value c.c_expr in
      let ok =
        match c.c_sense with
        | Le -> lhs <= c.c_rhs +. tol
        | Ge -> lhs >= c.c_rhs -. tol
        | Eq -> abs_float (lhs -. c.c_rhs) <= tol
      in
      if not ok then
        report
          (Printf.sprintf "constraint %s violated: lhs = %g, rhs = %g" c.c_name lhs c.c_rhs))
    t;
  match !violation with None -> Ok t.p_name | Some msg -> Error msg
