exception Injected_abort

type plan = {
  f_seed : int;
  f_pivot_reject : float;
  f_refactor_fail_every : int;
  f_perturb : float;
  f_early_timeout : float;
  f_corrupt_objective : float;
  f_checkpoint_corrupt : float;
  f_checkpoint_truncate : float;
  f_cancel_after_nodes : int;
  f_snapshot_corrupt : float;
  f_snapshot_truncate : float;
  f_request_stall : float;
  f_abort_every : int;
  f_warm_start_mangle : float;
  f_wedge_after : int;
  f_wedge_seconds : float;
  f_yield_every : int;
  f_cluster_fail : float;
}

let none =
  {
    f_seed = 0;
    f_pivot_reject = 0.;
    f_refactor_fail_every = 0;
    f_perturb = 0.;
    f_early_timeout = 0.;
    f_corrupt_objective = 0.;
    f_checkpoint_corrupt = 0.;
    f_checkpoint_truncate = 0.;
    f_cancel_after_nodes = 0;
    f_snapshot_corrupt = 0.;
    f_snapshot_truncate = 0.;
    f_request_stall = 0.;
    f_abort_every = 0;
    f_warm_start_mangle = 0.;
    f_wedge_after = 0;
    f_wedge_seconds = 0.;
    f_yield_every = 0;
    f_cluster_fail = 0.;
  }

type state = {
  plan : plan;
  mutable rng : int64;
  mutable refactors : int;
  mutable nodes_seen : int;
  mutable cancel_fired : bool;
  mutable requests : int;
  mutable wedge_polls : int;
  mutable wedge_fired : bool;
  counters : (string, int) Hashtbl.t;
}

(* The single flag every hook reads first: the zero-cost-when-disabled
   check. [state] is only consulted after the flag passes.

   The state behind the flag is guarded by [mu]: with the parallel branch
   & bound, hooks fire concurrently from worker domains, and the seeded
   generator and counters would otherwise race (a torn [Hashtbl.replace]
   can crash the process). The lock is only ever taken when a plan is
   installed, so the disabled-path cost stays one load and branch. *)
let enabled = ref false

let mu = Mutex.create ()

let state : state option ref = ref None

(* Schedule perturbation lives outside [mu] on purpose: [yield_point] is
   called from every domain at lock-shaped fault points (pool submit,
   flight publish, cache touch, budget poll), and routing it through the
   plan mutex would *serialize* exactly the interleavings the hook
   exists to perturb. The knobs are plain atomics set at install/clear;
   the per-call cost with no plan installed stays one load and branch. *)
let yield_every = Atomic.make 0

let yield_seed = Atomic.make 0

let yield_ticks = Atomic.make 0

let yield_fired = Atomic.make 0

let yield_point () =
  if !enabled then begin
    let every = Atomic.get yield_every in
    if every > 0 then begin
      let tick = Atomic.fetch_and_add yield_ticks 1 in
      (* Mix (seed, tick) so *which* sites pause — and for how long —
         changes with the seed, not just the firing rate: two runs with
         different seeds explore different interleavings even when they
         hit the same sequence of fault points. *)
      let z = ((tick + 1) * 0x9E3779B9) lxor (Atomic.get yield_seed * 0x85EBCA6B) in
      let z = (z lxor (z lsr 15)) * 0x2C1B3C6D in
      let z = (z lxor (z lsr 13)) land 0x3FFFFFFF in
      if z mod every = 0 then begin
        Atomic.incr yield_fired;
        let spins = 1 + (z / every) mod 64 in
        for _ = 1 to spins do
          Domain.cpu_relax ()
        done
      end
    end
  end

let yields_fired () = Atomic.get yield_fired

let install plan =
  Mutex.lock mu;
  state :=
    Some
      {
        plan;
        rng = Int64.of_int (plan.f_seed * 2654435761 + 1);
        refactors = 0;
        nodes_seen = 0;
        cancel_fired = false;
        requests = 0;
        wedge_polls = 0;
        wedge_fired = false;
        counters = Hashtbl.create 8;
      };
  Atomic.set yield_every plan.f_yield_every;
  Atomic.set yield_seed plan.f_seed;
  Atomic.set yield_ticks 0;
  Atomic.set yield_fired 0;
  enabled := true;
  Mutex.unlock mu

let clear () =
  Mutex.lock mu;
  state := None;
  Atomic.set yield_every 0;
  enabled := false;
  Mutex.unlock mu

let is_enabled () = !enabled

let installed () =
  Mutex.lock mu;
  let p = match !state with Some st -> Some st.plan | None -> None in
  Mutex.unlock mu;
  p

let bump st name =
  Hashtbl.replace st.counters name
    (1 + match Hashtbl.find_opt st.counters name with Some n -> n | None -> 0)

let fired () =
  Mutex.lock mu;
  let r =
    match !state with
    | None -> []
    | Some st ->
      let counters = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.counters [] in
      let counters =
        match Atomic.get yield_fired with 0 -> counters | n -> ("yield", n) :: counters
      in
      List.sort compare counters
  in
  Mutex.unlock mu;
  r

(* splitmix64: deterministic, seedable, good enough to decorrelate fault
   sites without dragging in [Random] (whose global state tests use). *)
let next_float st =
  st.rng <- Int64.add st.rng 0x9E3779B97F4A7C15L;
  let z = st.rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) *. 0x1p-53

(* Run [f] on the installed state under the lock; hooks below call this
   only after the enabled fast-path check passed. *)
let with_state f =
  Mutex.lock mu;
  let r = match !state with Some st -> f st | None -> false in
  Mutex.unlock mu;
  r

let pivot_rejected () =
  !enabled
  && with_state (fun st ->
         st.plan.f_pivot_reject > 0.
         && next_float st < st.plan.f_pivot_reject
         && begin
              bump st "pivot_reject";
              true
            end)

let refactor_fails () =
  !enabled
  && with_state (fun st ->
         st.plan.f_refactor_fail_every > 0
         && begin
              st.refactors <- st.refactors + 1;
              st.refactors mod st.plan.f_refactor_fail_every = 0
              && begin
                   bump st "refactor_fail";
                   true
                 end
            end)

let perturb_vector w =
  if !enabled then begin
    Mutex.lock mu;
    (match !state with
    | Some st when st.plan.f_perturb > 0. ->
      bump st "perturb";
      let eps = st.plan.f_perturb in
      for i = 0 to Array.length w - 1 do
        if w.(i) <> 0. then w.(i) <- w.(i) *. (1. +. (eps *. ((2. *. next_float st) -. 1.)))
      done
    | _ -> ());
    Mutex.unlock mu
  end

let early_timeout () =
  !enabled
  && with_state (fun st ->
         st.plan.f_early_timeout > 0.
         && next_float st < st.plan.f_early_timeout
         && begin
              bump st "early_timeout";
              true
            end)

let cancel_requested () =
  !enabled
  && with_state (fun st ->
         st.plan.f_cancel_after_nodes > 0
         && begin
              st.nodes_seen <- st.nodes_seen + 1;
              (not st.cancel_fired)
              && st.nodes_seen >= st.plan.f_cancel_after_nodes
              && begin
                   st.cancel_fired <- true;
                   bump st "cancel";
                   true
                 end
            end)

(* Shared payload-damage engine behind [mangle_checkpoint] (solver search
   snapshots) and [mangle_snapshot] (the service's plan-cache snapshots):
   the two persistence paths are damaged independently so a test can
   corrupt one without touching the other. *)
let mangle ~truncate_p ~truncate_name ~corrupt_p ~corrupt_name payload =
  if not !enabled then payload
  else begin
    Mutex.lock mu;
    let r =
      match !state with
      | Some st ->
        let p = ref payload in
        if truncate_p st.plan > 0. && next_float st < truncate_p st.plan then begin
          bump st truncate_name;
          let n = Bytes.length !p in
          p := Bytes.sub !p 0 (n / 2)
        end;
        if
          Bytes.length !p > 0
          && corrupt_p st.plan > 0.
          && next_float st < corrupt_p st.plan
        then begin
          bump st corrupt_name;
          let copy = Bytes.copy !p in
          let i = int_of_float (next_float st *. float_of_int (Bytes.length copy)) in
          let i = min i (Bytes.length copy - 1) in
          Bytes.set copy i (Char.chr (Char.code (Bytes.get copy i) lxor 0x5a));
          p := copy
        end;
        !p
      | None -> payload
    in
    Mutex.unlock mu;
    r
  end

let mangle_checkpoint payload =
  mangle
    ~truncate_p:(fun p -> p.f_checkpoint_truncate)
    ~truncate_name:"checkpoint_truncate"
    ~corrupt_p:(fun p -> p.f_checkpoint_corrupt)
    ~corrupt_name:"checkpoint_corrupt" payload

let mangle_snapshot payload =
  mangle
    ~truncate_p:(fun p -> p.f_snapshot_truncate)
    ~truncate_name:"snapshot_truncate"
    ~corrupt_p:(fun p -> p.f_snapshot_corrupt)
    ~corrupt_name:"snapshot_corrupt" payload

let request_stall () =
  if not !enabled then 0.
  else begin
    Mutex.lock mu;
    let r =
      match !state with
      | Some st when st.plan.f_request_stall > 0. ->
        bump st "request_stall";
        st.plan.f_request_stall
      | _ -> 0.
    in
    Mutex.unlock mu;
    r
  end

(* Wedge exactly one request: the [f_wedge_after]-th poll returns
   [f_wedge_seconds] once, every other poll returns 0. The caller sleeps
   that long *ignoring its budget* — a deterministic stand-in for a solve
   stuck between cooperative cancellation checks, which only the server's
   watchdog can turn into an answer. *)
let request_wedge () =
  if not !enabled then 0.
  else begin
    Mutex.lock mu;
    let r =
      match !state with
      | Some st when st.plan.f_wedge_after > 0 && st.plan.f_wedge_seconds > 0. ->
        st.wedge_polls <- st.wedge_polls + 1;
        if (not st.wedge_fired) && st.wedge_polls >= st.plan.f_wedge_after then begin
          st.wedge_fired <- true;
          bump st "request_wedge";
          st.plan.f_wedge_seconds
        end
        else 0.
      | _ -> 0.
    in
    Mutex.unlock mu;
    r
  end

let request_aborts () =
  !enabled
  && with_state (fun st ->
         st.plan.f_abort_every > 0
         && begin
              st.requests <- st.requests + 1;
              st.requests mod st.plan.f_abort_every = 0
              && begin
                   bump st "request_abort";
                   true
                 end
            end)

(* Veto one cluster solve of a decomposed query: the decomposition
   driver must absorb the dead cluster with its heuristic fallback and
   flag the stitched result degraded — never lose the whole query to
   one cluster's crash. *)
let cluster_fails () =
  !enabled
  && with_state (fun st ->
         st.plan.f_cluster_fail > 0.
         && next_float st < st.plan.f_cluster_fail
         && begin
              bump st "cluster_fail";
              true
            end)

(* Damage a warm-start assignment *after* the candidate was produced but
   *before* the solver certifies it: the certification gate, not the
   producer, is what must catch a stale or corrupted incumbent. The
   damage is loud — a bound-scale bump on one coordinate plus a flipped
   binary — so a mangled candidate can never still be the optimum. *)
let mangle_warm_start x =
  if not !enabled then x
  else begin
    Mutex.lock mu;
    let r =
      match !state with
      | Some st
        when st.plan.f_warm_start_mangle > 0.
             && Array.length x > 0
             && next_float st < st.plan.f_warm_start_mangle ->
        bump st "warm_start_mangle";
        let copy = Array.copy x in
        let i = int_of_float (next_float st *. float_of_int (Array.length copy)) in
        let i = min i (Array.length copy - 1) in
        copy.(i) <- copy.(i) +. 0.5;
        let j = int_of_float (next_float st *. float_of_int (Array.length copy)) in
        let j = min j (Array.length copy - 1) in
        copy.(j) <- (if copy.(j) > 0.5 then 0. else 1.);
        copy
      | _ -> x
    in
    Mutex.unlock mu;
    r
  end

let with_plan plan f =
  install plan;
  Fun.protect ~finally:clear f

let corrupt_objective v =
  if not !enabled then v
  else begin
    Mutex.lock mu;
    let r =
      match !state with
      | Some st when st.plan.f_corrupt_objective > 0. ->
        if next_float st < st.plan.f_corrupt_objective then begin
          bump st "corrupt_objective";
          Float.nan
        end
        else v
      | _ -> v
    in
    Mutex.unlock mu;
    r
  end
