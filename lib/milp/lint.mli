(** Static formulation auditor for {!Problem.t}.

    Runs over the model as built — after encoding, before presolve — and
    emits severity-ranked diagnostics, each with a stable code, the
    offending row / column names and a one-line explanation. The analyzer
    proves facts from variable bounds alone (interval arithmetic), so a
    clean report does not certify feasibility; it certifies the absence
    of a class of *structural* encoding bugs that otherwise surface only
    as wrong plans or numeric-recovery events at solve time.

    {2 Diagnostic codes}

    Feasibility and redundancy (interval propagation):
    - [L101] (Error) — row trivially infeasible under propagated bounds.
    - [L102] (Warn) — row always slack: satisfied by every point in the
      bound box, so it never binds and is dead weight.
    - [L103] (Error) — non-finite coefficient or right-hand side, or a
      NaN bound.

    Shape:
    - [L201] (Warn) — dangling column: the variable appears in no row
      and not in the objective.
    - [L202] (Warn) — empty row: every coefficient cancelled during
      canonicalization (an infeasible empty row is [L101] instead).
    - [L203] (Warn) — duplicate row: identical terms, sense and
      right-hand side as an earlier row.

    Numerics:
    - [L301] (Warn) — row coefficient range exceeds
      [config.cond_threshold] *after* {!Stdform} equilibration
      (conditioning risk the scaling cannot absorb; raw staircase rows
      legitimately span many orders of magnitude).
    - [L302] (Error) — insufficient big-M: a row shaped like an
      indicator (one binary, the rest continuous/integer) whose span is
      at least half of, but strictly less than, what the declared bounds
      require, so the "relaxed" state still cuts feasible points.
    - [L303] (Warn) — loose big-M: span exceeds what the declared
      bounds require by more than [config.bigm_rel_slack].
    - [L304] (Info) — constant objective.
    - [L305] (Info) — aggregate: big-Ms provably tightenable under
      *propagated* (rather than declared) bounds. One diagnostic for
      the whole problem; tight-vs-declared rows are the generator's
      contract, tighter-under-propagation is an optimization hint.

    Paper-invariant structure (only when the problem carries
    [joinopt.*] metadata; see {!Problem.set_meta}):
    - [L400] (Error) — malformed [joinopt.*] metadata.
    - [L401] (Error) — join-order structure broken: missing or
      mis-shaped one-hot / slot rows for the declared formulation.
    - [L402] (Error) — selectivity linking broken: a predicate's
      applicability or log-cardinality rows are missing, or a
      [lco_def] row's selectivity coefficient disagrees with the
      declared log10 selectivity.
    - [L403] (Error) — expensive-predicate extension block inconsistent
      with its declaration.
    - [L404] (Error) — join-orders extension block inconsistent.
    - [L405] (Error) — projection extension block inconsistent. *)

type severity = Error | Warn | Info

type diagnostic = {
  d_code : string;  (** stable code, e.g. ["L101"] *)
  d_severity : severity;
  d_subject : string;  (** offending row / column name(s), possibly empty *)
  d_message : string;  (** one-line explanation *)
}

type stats = {
  s_rows : int;
  s_cols : int;
  s_nonzeros : int;
  s_binaries : int;
  s_integers : int;  (** general integers, excluding binaries *)
  s_coeff_min : float;  (** min |a_ij| over the raw matrix; 0 if empty *)
  s_coeff_max : float;
  s_scaled_coeff_min : float;
      (** same range after {!Stdform} equilibration — what the simplex
          actually faces *)
  s_scaled_coeff_max : float;
}

type report = {
  diagnostics : diagnostic list;  (** sorted Error first, then Warn, then Info *)
  stats : stats;
}

type level = Off | Standard | Strict
(** How callers consume a report: [Off] skips analysis entirely,
    [Standard] fails on [Error], [Strict] promotes [Warn] to failure.
    [Info] never fails. *)

type config = {
  cond_threshold : float;  (** per-row max/min |coeff| ratio for [L301]; default 1e10 *)
  bigm_rel_slack : float;
      (** relative slack tolerated before a sufficient big-M is flagged
          loose ([L303]); default 0.05 *)
  max_propagation_passes : int;  (** bound-propagation sweeps; default 3 *)
  structure : bool;  (** run the [L4xx] metadata-keyed checks; default true *)
  tol : float;  (** absolute/relative comparison tolerance; default 1e-9 *)
}

val default_config : config

val analyze : ?config:config -> Problem.t -> report

val level_of_strict : bool -> level
(** [Strict] when [true], else [Standard]. *)

val errors : report -> int
val warnings : report -> int

val failed : level -> report -> bool
(** Whether the report fails at the given level ([Off] never fails). *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
(** One line: [code severity subject: message]. *)

val pp_report : Format.formatter -> report -> unit
(** Statistics header followed by one line per diagnostic. *)
