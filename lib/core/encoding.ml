module Problem = Milp.Problem
module Linexpr = Milp.Linexpr

type formulation = Full_paper | Reduced

type config = {
  precision : Thresholds.precision;
  rounding : Thresholds.rounding;
  max_modeled_card : float;
  adaptive_cap : bool;
  monotone_ladder : bool;
  formulation : formulation;
}

let default_config =
  {
    precision = Thresholds.Medium;
    rounding = Thresholds.Central;
    max_modeled_card = 1e30;
    adaptive_cap = true;
    monotone_ladder = true;
    formulation = Reduced;
  }

type t = {
  problem : Problem.t;
  query : Relalg.Query.t;
  config : config;
  ladder : Thresholds.t;
  num_joins : int;
  tio : Problem.var array array;
  tio_expr : Linexpr.t array array;
  tii : Problem.var array array;
  pao : Problem.var array array;
  lco : Problem.var array;
  cto : Problem.var array array;
  co : Problem.var array;
  ci : Problem.var array;
  effective_card : float array;
  pred_ids : int array;
  log10_sels : float array;
  pred_masks : int array;  (* table bitmask per encoded predicate *)
}

(* Per-table cardinality with unary predicate selectivities folded in
   (unary predicates run at scan time; see Cost_model). *)
let effective_cards q =
  let n = Relalg.Query.num_tables q in
  let cards = Array.init n (fun t -> Relalg.Query.table_card q t) in
  Array.iter
    (fun p ->
      match p.Relalg.Predicate.pred_tables with
      | [ t ] -> cards.(t) <- cards.(t) *. p.Relalg.Predicate.selectivity
      | _ -> ())
    q.Relalg.Query.predicates;
  cards

(* Encoded predicate inventory: non-unary real predicates first (recording
   their index into the query), then one virtual predicate per correlated
   group. A group's "members" are split into non-unary ones (tracked by
   their encoded index) and unary ones (tracked by their table, since they
   are applied whenever their table is present). *)
type encoded_pred = {
  ep_id : int;  (* query predicate index, or -1 for a correlation group *)
  ep_tables : int list;
  ep_log10_sel : float;
  ep_members : int list;  (* encoded indices of non-unary members (groups only) *)
  ep_unary_member_tables : int list;  (* tables of unary members (groups only) *)
}

let encoded_preds q =
  let reals = ref [] and index_of_query_pred = Hashtbl.create 16 in
  let count = ref 0 in
  Array.iteri
    (fun pi p ->
      match p.Relalg.Predicate.pred_tables with
      | [ _ ] -> ()
      | tables ->
        Hashtbl.replace index_of_query_pred pi !count;
        incr count;
        reals :=
          {
            ep_id = pi;
            ep_tables = tables;
            ep_log10_sel = log10 p.Relalg.Predicate.selectivity;
            ep_members = [];
            ep_unary_member_tables = [];
          }
          :: !reals)
    q.Relalg.Query.predicates;
  let groups =
    Array.to_list
      (Array.map
         (fun c ->
           let member_preds =
             List.map (fun pi -> (pi, q.Relalg.Query.predicates.(pi))) c.Relalg.Predicate.corr_members
           in
           let tables =
             List.sort_uniq compare
               (List.concat_map (fun (_, p) -> p.Relalg.Predicate.pred_tables) member_preds)
           in
           let encoded_members =
             List.filter_map
               (fun (pi, _) -> Hashtbl.find_opt index_of_query_pred pi)
               member_preds
           in
           let unary_tables =
             List.filter_map
               (fun (_, p) ->
                 match p.Relalg.Predicate.pred_tables with [ t ] -> Some t | _ -> None)
               member_preds
           in
           {
             ep_id = -1;
             ep_tables = tables;
             ep_log10_sel = log10 c.Relalg.Predicate.corr_correction;
             ep_members = encoded_members;
             ep_unary_member_tables = unary_tables;
           })
         q.Relalg.Query.correlations)
  in
  Array.of_list (List.rev !reals @ groups)

let num_encoded_preds enc = Array.length enc.pred_ids

(* The threshold ladder [build] constructs for a query: the range covers
   cardinalities up to the product of all (unary-filtered) table
   cardinalities, clipped by the configured cap and — when enabled — by
   the adaptive cap. Any plan with an intermediate result two orders of
   magnitude above the greedy plan's total C_out is dominated by the
   greedy plan, so the staircase can saturate there; this keeps the
   coefficient range of the MILP manageable (the raw range for large
   queries spans hundreds of orders of magnitude, which no LP arithmetic
   survives). *)
let planned_ladder config q =
  let cards = effective_cards q in
  let max_card =
    min config.max_modeled_card (Array.fold_left (fun acc c -> acc *. c) 1. cards)
  in
  let max_card =
    if config.adaptive_cap && Relalg.Query.num_tables q >= 2 then begin
      let greedy_cout =
        Array.fold_left ( +. ) 0. (Relalg.Card.prefix_cards q (Dp_opt.Greedy.order q))
      in
      min max_card (max (greedy_cout *. 100.) 1e6)
    end
    else max_card
  in
  Thresholds.make ~rounding:config.rounding ~max_card:(max max_card 2.) config.precision

let build ?(config = default_config) q =
  let n = Relalg.Query.num_tables q in
  if n < 2 then invalid_arg "Encoding.build: need at least two tables";
  let jmax = n - 2 in
  let num_joins = n - 1 in
  let cards = effective_cards q in
  let log_cards = Array.map log10 cards in
  let preds = encoded_preds q in
  let mp = Array.length preds in
  let pred_ids = Array.map (fun ep -> ep.ep_id) preds in
  let log10_sels = Array.map (fun ep -> ep.ep_log10_sel) preds in
  let pred_masks =
    Array.map (fun ep -> List.fold_left (fun m t -> m lor (1 lsl t)) 0 ep.ep_tables) preds
  in
  let ladder = planned_ladder config q in
  let l = Thresholds.num_thresholds ladder in
  let p = Problem.create ~name:"join-order" () in
  (* --- variables ------------------------------------------------- *)
  (* Branching priority: the order-defining binaries first, early joins
     before late ones (their fixing cascades through the chaining
     constraints). tio for j >= 1 is forced to tii+tio of the previous
     join, hence automatically integral: declaring those continuous in
     [0,1] keeps the branching space minimal without changing the
     feasible set. *)
  let tio =
    Array.init num_joins (fun j ->
        if j > 0 && config.formulation = Reduced then [||]
        else
          Array.init n (fun t ->
              let priority = if j = 0 then 1000 else 0 in
              let kind = if j = 0 then Problem.Binary else Problem.Continuous in
              Problem.add_var p ~name:(Printf.sprintf "tio_t%d_j%d" t j) ~lb:0. ~ub:1. ~kind
                ~priority ()))
  in
  let tii =
    Array.init num_joins (fun j ->
        Array.init n (fun t ->
            Problem.add_var p
              ~name:(Printf.sprintf "tii_t%d_j%d" t j)
              ~kind:Problem.Binary ~priority:(900 - (10 * j)) ()))
  in
  (* Presence of table t in the outer operand of join j, as a linear
     expression: a dedicated variable in the paper's formulation, or the
     cumulative sum tio0_t + sum_(k<j) tii_kt in the reduced one (the
     elimination a solver's presolve would perform). *)
  let tio_expr =
    Array.init num_joins (fun j ->
        Array.init n (fun t ->
            match config.formulation with
            | Full_paper -> Linexpr.var tio.(j).(t)
            | Reduced ->
              if j = 0 then Linexpr.var tio.(0).(t)
              else
                Linexpr.of_terms
                  ((tio.(0).(t), 1.) :: List.init j (fun k -> (tii.(k).(t), 1.)))))
  in
  let pao =
    Array.init num_joins (fun j ->
        if j = 0 then [||]
        else
          Array.init mp (fun pi ->
              Problem.add_var p ~name:(Printf.sprintf "pao_p%d_j%d" pi j) ~kind:Problem.Binary ()))
  in
  let max_log = Array.fold_left ( +. ) 0. log_cards in
  let min_log = Array.fold_left ( +. ) 0. log10_sels in
  (* One binding serves both the lco bound and the staircase big-M
     derivation (via Bigm.threshold_activation): the two cannot drift. *)
  let lco_ub = max_log +. 1. in
  let lco =
    Array.init num_joins (fun j ->
        if j = 0 then -1
        else
          Problem.add_var p ~name:(Printf.sprintf "lco_j%d" j) ~lb:(min_log -. 1.) ~ub:lco_ub ())
  in
  let cto =
    Array.init num_joins (fun j ->
        if j = 0 then [||]
        else
          Array.init l (fun r ->
              Problem.add_var p ~name:(Printf.sprintf "cto_r%d_j%d" r j) ~kind:Problem.Binary ()))
  in
  (* Explicit finite upper bounds keep the LP from wandering along
     near-rays of the staircase variables. *)
  let co_ub = Array.fold_left ( +. ) 0. ladder.Thresholds.deltas in
  let ci_ub = Array.fold_left (fun acc c -> max acc c) 1. cards in
  let co =
    Array.init num_joins (fun j ->
        if j = 0 then -1
        else Problem.add_var p ~name:(Printf.sprintf "co_j%d" j) ~lb:0. ~ub:co_ub ())
  in
  let ci =
    Array.init num_joins (fun j ->
        Problem.add_var p ~name:(Printf.sprintf "ci_j%d" j) ~lb:0. ~ub:ci_ub ())
  in
  (* --- join order constraints (Table 2) --------------------------- *)
  let sum_over vars = Linexpr.of_terms (Array.to_list (Array.map (fun v -> (v, 1.)) vars)) in
  (* One table as the outer operand of the first join. *)
  Problem.add_constr p ~name:"outer0_single" (sum_over tio.(0)) Problem.Eq 1.;
  (* One table per inner operand. *)
  for j = 0 to jmax do
    Problem.add_constr p
      ~name:(Printf.sprintf "inner%d_single" j)
      (sum_over tii.(j)) Problem.Eq 1.
  done;
  (match config.formulation with
  | Full_paper ->
    (* Operands of one join never overlap. *)
    for j = 0 to jmax do
      for t = 0 to n - 1 do
        Problem.add_constr p
          ~name:(Printf.sprintf "no_overlap_t%d_j%d" t j)
          Linexpr.(add (var tio.(j).(t)) (var tii.(j).(t)))
          Problem.Le 1.
      done
    done;
    (* The next outer operand is the previous join's result. *)
    for j = 1 to jmax do
      for t = 0 to n - 1 do
        Problem.add_constr p
          ~name:(Printf.sprintf "chain_t%d_j%d" t j)
          Linexpr.(sub (var tio.(j).(t)) (add (var tio.(j - 1).(t)) (var tii.(j - 1).(t))))
          Problem.Eq 0.
      done
    done
  | Reduced ->
    (* Each table fills at most one slot (first outer or some inner);
       together with the one-hot slot constraints and the slot count this
       forces exactly the left-deep permutations. *)
    for t = 0 to n - 1 do
      Problem.add_constr p
        ~name:(Printf.sprintf "at_most_once_t%d" t)
        (Linexpr.of_terms
           ((tio.(0).(t), 1.) :: List.init num_joins (fun j -> (tii.(j).(t), 1.))))
        Problem.Le 1.
    done);
  (* --- predicate applicability ------------------------------------ *)
  for j = 1 to jmax do
    Array.iteri
      (fun pi ep ->
        (* Applicable only when every referenced table is present (for
           groups this covers unary members' tables as well). *)
        List.iter
          (fun t ->
            Problem.add_constr p
              ~name:(Printf.sprintf "applicable_p%d_t%d_j%d" pi t j)
              (Linexpr.sub (Linexpr.var pao.(j).(pi)) tio_expr.(j).(t))
              Problem.Le 0.)
          ep.ep_tables;
        if ep.ep_id = -1 then begin
          (* Correlated group (Section 5.1): forced on exactly when every
             member is applied. Upper bounds against each non-unary
             member; the lower bound counts non-unary members' pao and
             unary members' table presence. *)
          List.iter
            (fun mi ->
              Problem.add_constr p
                ~name:(Printf.sprintf "group%d_le_p%d_j%d" pi mi j)
                Linexpr.(sub (var pao.(j).(pi)) (var pao.(j).(mi)))
                Problem.Le 0.)
            ep.ep_members;
          let k =
            List.length ep.ep_members + List.length ep.ep_unary_member_tables
          in
          let expr =
            List.fold_left
              (fun e t -> Linexpr.sub e tio_expr.(j).(t))
              (Linexpr.of_terms
                 ((pao.(j).(pi), 1.) :: List.map (fun mi -> (pao.(j).(mi), -1.)) ep.ep_members))
              ep.ep_unary_member_tables
          in
          Problem.add_constr p
            ~name:(Printf.sprintf "group%d_forced_j%d" pi j)
            expr Problem.Ge
            (1. -. float_of_int k)
        end)
      preds
  done;
  (* --- cardinalities ---------------------------------------------- *)
  (* Inner operand cardinality (exact). *)
  for j = 0 to jmax do
    let e =
      Linexpr.of_terms
        ((ci.(j), -1.) :: Array.to_list (Array.mapi (fun t v -> (v, cards.(t))) tii.(j)))
    in
    Problem.add_constr p ~name:(Printf.sprintf "ci_def_j%d" j) e Problem.Eq 0.
  done;
  (* Log-cardinality of outer operands (exact, Section 4.2). *)
  for j = 1 to jmax do
    let table_part = ref Linexpr.zero in
    for t = 0 to n - 1 do
      table_part := Linexpr.add !table_part (Linexpr.scale log_cards.(t) tio_expr.(j).(t))
    done;
    let pred_terms = Array.to_list (Array.mapi (fun pi v -> (v, log10_sels.(pi))) pao.(j)) in
    let e =
      Linexpr.add !table_part (Linexpr.of_terms ((lco.(j), -1.) :: pred_terms))
    in
    Problem.add_constr p ~name:(Printf.sprintf "lco_def_j%d" j) e Problem.Eq 0.
  done;
  (* Threshold activation: lco_j - M_r * cto_rj <= log theta_r, with the
     tightest valid big-M per threshold. *)
  for j = 1 to jmax do
    for r = 0 to l - 1 do
      let log_theta = ladder.Thresholds.log10_thetas.(r) in
      let big_m = Bigm.threshold_activation ~ub_log:lco_ub ~log_theta in
      Problem.add_constr p
        ~name:(Printf.sprintf "cto_def_r%d_j%d" r j)
        Linexpr.(sub (var lco.(j)) (var ~coeff:big_m cto.(j).(r)))
        Problem.Le log_theta
    done;
    if config.monotone_ladder then
      for r = 0 to l - 2 do
        Problem.add_constr p
          ~name:(Printf.sprintf "cto_mono_r%d_j%d" r j)
          Linexpr.(sub (var cto.(j).(r + 1)) (var cto.(j).(r)))
          Problem.Le 0.
      done
  done;
  (* Raw cardinality from the staircase. *)
  for j = 1 to jmax do
    let e =
      Linexpr.of_terms
        ((co.(j), -1.)
        :: Array.to_list (Array.mapi (fun r v -> (v, ladder.Thresholds.deltas.(r))) cto.(j)))
    in
    Problem.add_constr p ~name:(Printf.sprintf "co_def_j%d" j) e Problem.Eq 0.
  done;
  (* Declare the structural contract for Milp.Lint's L4xx checks; the
     metadata never influences solving. *)
  Problem.set_meta p "joinopt.tables" (string_of_int n);
  Problem.set_meta p "joinopt.joins" (string_of_int num_joins);
  Problem.set_meta p "joinopt.formulation"
    (match config.formulation with Reduced -> "reduced" | Full_paper -> "full-paper");
  Problem.set_meta p "joinopt.thresholds" (string_of_int l);
  Problem.set_meta p "joinopt.pred_tables"
    (String.concat ";"
       (Array.to_list
          (Array.map
             (fun ep -> String.concat "," (List.map string_of_int ep.ep_tables))
             preds)));
  Problem.set_meta p "joinopt.log10_sels"
    (String.concat ";"
       (Array.to_list (Array.map (fun s -> Printf.sprintf "%.17g" s) log10_sels)));
  (* Effective cardinalities and the threshold ladder, in full [%.17g]
     precision so {!Milp.Warm_start} can rebuild a variable assignment
     for a candidate plan bit-for-bit equal to {!assignment_of_order}
     without access to the query or this record. *)
  let floats17 a =
    String.concat ";" (Array.to_list (Array.map (fun v -> Printf.sprintf "%.17g" v) a))
  in
  Problem.set_meta p "joinopt.cards" (floats17 cards);
  Problem.set_meta p "joinopt.ladder.log10_thetas" (floats17 ladder.Thresholds.log10_thetas);
  Problem.set_meta p "joinopt.ladder.deltas" (floats17 ladder.Thresholds.deltas);
  {
    problem = p;
    query = q;
    config;
    ladder;
    num_joins;
    tio;
    tio_expr;
    tii;
    pao;
    lco;
    cto;
    co;
    ci;
    effective_card = cards;
    pred_ids;
    log10_sels;
    pred_masks;
  }

(* ------------------------------------------------------------------ *)
(* Reading and writing assignments                                      *)
(* ------------------------------------------------------------------ *)

let order_of_assignment enc value =
  let n = Relalg.Query.num_tables enc.query in
  let pick vars what =
    let best = ref (-1) in
    Array.iteri (fun t v -> if value v > 0.5 && !best < 0 then best := t) vars;
    match !best with
    | -1 -> failwith (Printf.sprintf "Encoding.order_of_assignment: no table selected for %s" what)
    | t -> t
  in
  let order = Array.make n 0 in
  order.(0) <- pick enc.tio.(0) "outer 0";
  for j = 0 to enc.num_joins - 1 do
    order.(j + 1) <- pick enc.tii.(j) (Printf.sprintf "inner %d" j)
  done;
  let seen = Array.make n false in
  Array.iter
    (fun t ->
      if seen.(t) then failwith "Encoding.order_of_assignment: not a permutation";
      seen.(t) <- true)
    order;
  order

(* Applicable encoded predicates for a table bitmask; groups are
   "applicable" exactly when all their tables are present, which matches
   the constraint system (members applicable too). *)
let encoded_applicable enc tables_mask =
  let acc = ref 0 in
  Array.iteri
    (fun pi mask -> if mask land tables_mask = mask then acc := !acc lor (1 lsl pi))
    enc.pred_masks;
  !acc

let log10_outer_card enc order j =
  if j < 1 || j > enc.num_joins - 1 then invalid_arg "Encoding.log10_outer_card";
  let mask = ref 0 and logc = ref 0. in
  for k = 0 to j do
    mask := !mask lor (1 lsl order.(k));
    logc := !logc +. log10 enc.effective_card.(order.(k))
  done;
  let app = encoded_applicable enc !mask in
  Array.iteri (fun pi ls -> if app land (1 lsl pi) <> 0 then logc := !logc +. ls) enc.log10_sels;
  !logc

let assignment_of_order enc order =
  let n = Relalg.Query.num_tables enc.query in
  if Array.length order <> n then invalid_arg "Encoding.assignment_of_order: length";
  let x = Array.make (Problem.num_vars enc.problem) 0. in
  (* Table membership and inner cardinalities. *)
  for j = 0 to enc.num_joins - 1 do
    if Array.length enc.tio.(j) > 0 then
      for k = 0 to j do
        x.(enc.tio.(j).(order.(k))) <- 1.
      done;
    x.(enc.tii.(j).(order.(j + 1))) <- 1.;
    x.(enc.ci.(j)) <- enc.effective_card.(order.(j + 1))
  done;
  (* Predicates, log-cardinalities, thresholds. *)
  for j = 1 to enc.num_joins - 1 do
    let mask = ref 0 in
    for k = 0 to j do
      mask := !mask lor (1 lsl order.(k))
    done;
    let app = encoded_applicable enc !mask in
    Array.iteri (fun pi v -> if app land (1 lsl pi) <> 0 then x.(v) <- 1.) enc.pao.(j);
    let lc = log10_outer_card enc order j in
    x.(enc.lco.(j)) <- lc;
    let hits = Thresholds.reached enc.ladder lc in
    Array.iteri (fun r v -> if hits.(r) then x.(v) <- 1.) enc.cto.(j);
    x.(enc.co.(j)) <- Thresholds.approx_card enc.ladder lc
  done;
  x
