module Problem = Milp.Problem
module Linexpr = Milp.Linexpr
module Linearize = Milp.Linearize
module Cost_model = Relalg.Cost_model
module Plan = Relalg.Plan

type spec =
  | Cout
  | Fixed_operator of Plan.operator
  | Choose_operator of Plan.operator list

let spec_to_string = function
  | Cout -> "cout"
  | Fixed_operator op -> "fixed-" ^ Plan.operator_to_string op
  | Choose_operator ops ->
    "choose-" ^ String.concat "/" (List.map Plan.operator_to_string ops)

type bnl_aux = {
  blocks : Problem.var array;  (* per join *)
  y : Problem.var array array;  (* [j][t] = tii * blocks products *)
}

type aux =
  | No_aux
  | Bnl of bnl_aux
  | Choose of {
      ops : Plan.operator array;
      jos : Problem.var array array;  (* [j][i] *)
      pjc : Problem.var array array;
      ajc : Problem.var array array;
      bnl : bnl_aux option;
    }

type t = { enc : Encoding.t; spec : spec; pm : Cost_model.page_model; aux : aux }

let encoding c = c.enc
let spec c = c.spec
let page_model c = c.pm

(* ------------------------------------------------------------------ *)
(* Cost functions of the cardinality (monotone, zero at zero)           *)
(* ------------------------------------------------------------------ *)

let ceil_log2 x = if x <= 1. then 0. else ceil (log x /. log 2.)

let g_pages pm c = Cost_model.pages pm c

let g_smj pm c =
  let pg = Cost_model.pages pm c in
  (2. *. pg *. ceil_log2 pg) +. pg

let g_blocks pm c =
  let pg = Cost_model.pages pm c in
  if Float.compare pg 0. = 0 then 0. else ceil (pg /. pm.Cost_model.buffer_pages)

(* ------------------------------------------------------------------ *)
(* Linear expressions for operand quantities                            *)
(* ------------------------------------------------------------------ *)

(* Exact: sum of g(card_t) over the single selected table. *)
let inner_expr enc g j =
  Linexpr.of_terms
    (Array.to_list
       (Array.mapi (fun t v -> (v, g enc.Encoding.effective_card.(t))) enc.Encoding.tii.(j)))

(* Outer of join 0 is a single table: exact over the tio selectors.
   Later outers: threshold staircase. *)
let outer_expr enc g j =
  if j = 0 then
    Linexpr.of_terms
      (Array.to_list
         (Array.mapi (fun t v -> (v, g enc.Encoding.effective_card.(t))) enc.Encoding.tio.(0)))
  else begin
    let levels = Thresholds.levels enc.Encoding.ladder g in
    Linexpr.of_terms
      (Array.to_list (Array.mapi (fun r v -> (v, levels.(r))) enc.Encoding.cto.(j)))
  end

(* Upper bound of g over any outer operand: the top staircase step or any
   single table. *)
let outer_upper_bound enc g =
  let ladder = enc.Encoding.ladder in
  let top =
    ladder.Thresholds.step_factor
    *. ladder.Thresholds.thetas.(Thresholds.num_thresholds ladder - 1)
  in
  Array.fold_left (fun acc c -> max acc (g c)) (g top) enc.Encoding.effective_card

let inner_upper_bound enc g =
  Array.fold_left (fun acc c -> max acc (g c)) 0. enc.Encoding.effective_card

(* ------------------------------------------------------------------ *)
(* Block-nested-loop auxiliary structure (the paper's Section 4.3        *)
(* "second idea": one product per table selector)                        *)
(* ------------------------------------------------------------------ *)

let build_bnl_aux enc pm =
  let p = enc.Encoding.problem in
  let n = Relalg.Query.num_tables enc.Encoding.query in
  let bmax = outer_upper_bound enc (g_blocks pm) in
  let blocks =
    Array.init enc.Encoding.num_joins (fun j ->
        let v = Problem.add_var p ~name:(Printf.sprintf "blocks_j%d" j) ~lb:0. ~ub:bmax () in
        Problem.add_constr p
          ~name:(Printf.sprintf "blocks_def_j%d" j)
          (Linexpr.sub (Linexpr.var v) (outer_expr enc (g_blocks pm) j))
          Problem.Eq 0.;
        v)
  in
  let y =
    Array.init enc.Encoding.num_joins (fun j ->
        Array.init n (fun t ->
            Linearize.product_binary_continuous p
              ~name:(Printf.sprintf "bnl_y_t%d_j%d" t j)
              ~binary:enc.Encoding.tii.(j).(t) ~continuous:blocks.(j) ~lb:0. ~ub:bmax ()))
  in
  { blocks; y }

let bnl_cost_expr enc pm aux j =
  Linexpr.of_terms
    (Array.to_list
       (Array.mapi
          (fun t v -> (v, g_pages pm enc.Encoding.effective_card.(t)))
          aux.y.(j)))

(* ------------------------------------------------------------------ *)
(* Per-operator cost expressions                                        *)
(* ------------------------------------------------------------------ *)

let operator_cost_expr enc pm bnl_aux op j =
  match (op : Plan.operator) with
  | Plan.Hash_join ->
    Linexpr.scale 3.
      (Linexpr.add (outer_expr enc (g_pages pm) j) (inner_expr enc (g_pages pm) j))
  | Plan.Sort_merge_join ->
    Linexpr.add (outer_expr enc (g_smj pm) j) (inner_expr enc (g_smj pm) j)
  | Plan.Block_nested_loop -> (
    match bnl_aux with
    | Some aux -> bnl_cost_expr enc pm aux j
    | None -> invalid_arg "Cost_enc: BNL cost requires the product auxiliaries")

let operator_cost_bound enc pm op =
  match (op : Plan.operator) with
  | Plan.Hash_join ->
    3. *. (outer_upper_bound enc (g_pages pm) +. inner_upper_bound enc (g_pages pm))
  | Plan.Sort_merge_join ->
    outer_upper_bound enc (g_smj pm) +. inner_upper_bound enc (g_smj pm)
  | Plan.Block_nested_loop ->
    outer_upper_bound enc (g_blocks pm) *. inner_upper_bound enc (g_pages pm)

(* ------------------------------------------------------------------ *)
(* Installation                                                         *)
(* ------------------------------------------------------------------ *)

(* Final result cardinality: all tables and all (encoded) predicates. *)
let final_card enc =
  let logc =
    Array.fold_left (fun acc c -> acc +. log10 c) 0. enc.Encoding.effective_card
    +. Array.fold_left ( +. ) 0. enc.Encoding.log10_sels
  in
  10. ** logc

let install ?(pm = Cost_model.default_page_model) enc spec =
  let p = enc.Encoding.problem in
  let aux, objective =
    match spec with
    | Cout ->
      let terms = ref [] in
      for j = 1 to enc.Encoding.num_joins - 1 do
        terms := (enc.Encoding.co.(j), 1.) :: !terms
      done;
      (No_aux, Linexpr.of_terms ~const:(final_card enc) !terms)
    | Fixed_operator Plan.Block_nested_loop ->
      let aux = build_bnl_aux enc pm in
      let obj = ref Linexpr.zero in
      for j = 0 to enc.Encoding.num_joins - 1 do
        obj := Linexpr.add !obj (bnl_cost_expr enc pm aux j)
      done;
      (Bnl aux, !obj)
    | Fixed_operator op ->
      let obj = ref Linexpr.zero in
      for j = 0 to enc.Encoding.num_joins - 1 do
        obj := Linexpr.add !obj (operator_cost_expr enc pm None op j)
      done;
      (No_aux, !obj)
    | Choose_operator ops_list ->
      if ops_list = [] then invalid_arg "Cost_enc.install: empty operator list";
      let ops = Array.of_list (List.sort_uniq compare ops_list) in
      let needs_bnl = Array.exists (fun op -> op = Plan.Block_nested_loop) ops in
      let bnl = if needs_bnl then Some (build_bnl_aux enc pm) else None in
      let nops = Array.length ops in
      let jos =
        Array.init enc.Encoding.num_joins (fun j ->
            Array.init nops (fun i ->
                Problem.add_var p
                  ~name:(Printf.sprintf "jos_j%d_%s" j (Plan.operator_to_string ops.(i)))
                  ~kind:Problem.Binary ()))
      in
      let pjc =
        Array.init enc.Encoding.num_joins (fun j ->
            Array.init nops (fun i ->
                let bound = operator_cost_bound enc pm ops.(i) in
                let v =
                  Problem.add_var p
                    ~name:(Printf.sprintf "pjc_j%d_%s" j (Plan.operator_to_string ops.(i)))
                    ~lb:0. ~ub:bound ()
                in
                Problem.add_constr p
                  ~name:(Printf.sprintf "pjc_def_j%d_%d" j i)
                  (Linexpr.sub (Linexpr.var v) (operator_cost_expr enc pm bnl ops.(i) j))
                  Problem.Eq 0.;
                v))
      in
      let ajc =
        Array.init enc.Encoding.num_joins (fun j ->
            Array.init nops (fun i ->
                Linearize.product_binary_continuous p
                  ~name:(Printf.sprintf "ajc_j%d_%s" j (Plan.operator_to_string ops.(i)))
                  ~binary:jos.(j).(i) ~continuous:pjc.(j).(i) ~lb:0.
                  ~ub:(operator_cost_bound enc pm ops.(i))
                  ()))
      in
      (* Exactly one operator per join. *)
      for j = 0 to enc.Encoding.num_joins - 1 do
        Problem.add_constr p
          ~name:(Printf.sprintf "one_op_j%d" j)
          (Linexpr.of_terms (Array.to_list (Array.map (fun v -> (v, 1.)) jos.(j))))
          Problem.Eq 1.
      done;
      let obj = ref Linexpr.zero in
      Array.iter
        (fun row -> Array.iter (fun v -> obj := Linexpr.add_term !obj v 1.) row)
        ajc;
      (Choose { ops; jos; pjc; ajc; bnl }, !obj)
  in
  Problem.set_objective p Problem.Minimize objective;
  Problem.set_meta p "joinopt.cost" (spec_to_string spec);
  { enc; spec; pm; aux }

(* ------------------------------------------------------------------ *)
(* Honest assignments and objective evaluation                          *)
(* ------------------------------------------------------------------ *)

(* Approximate outer quantity at join j under a given order: exact for
   j = 0, staircase for j >= 1 (what the cto variables force). *)
let outer_value c order g j =
  if j = 0 then g c.enc.Encoding.effective_card.(order.(0))
  else Thresholds.approx_fn c.enc.Encoding.ladder g (Encoding.log10_outer_card c.enc order j)

let operator_cost_value c order op j =
  let inner_card = c.enc.Encoding.effective_card.(order.(j + 1)) in
  match (op : Plan.operator) with
  | Plan.Hash_join -> 3. *. (outer_value c order (g_pages c.pm) j +. g_pages c.pm inner_card)
  | Plan.Sort_merge_join -> outer_value c order (g_smj c.pm) j +. g_smj c.pm inner_card
  | Plan.Block_nested_loop -> outer_value c order (g_blocks c.pm) j *. g_pages c.pm inner_card

let fill_bnl c aux order x =
  for j = 0 to c.enc.Encoding.num_joins - 1 do
    let b = outer_value c order (g_blocks c.pm) j in
    x.(aux.blocks.(j)) <- b;
    Array.iteri (fun t y -> x.(y) <- (if t = order.(j + 1) then b else 0.)) aux.y.(j)
  done

let extend_assignment c order x =
  match c.aux with
  | No_aux -> ()
  | Bnl aux -> fill_bnl c aux order x
  | Choose { ops; jos; pjc; ajc; bnl } ->
    (match bnl with Some aux -> fill_bnl c aux order x | None -> ());
    for j = 0 to c.enc.Encoding.num_joins - 1 do
      let costs = Array.map (fun op -> operator_cost_value c order op j) ops in
      let best = ref 0 in
      Array.iteri (fun i v -> if v < costs.(!best) then best := i) costs;
      Array.iteri
        (fun i _ ->
          x.(jos.(j).(i)) <- (if i = !best then 1. else 0.);
          x.(pjc.(j).(i)) <- costs.(i);
          x.(ajc.(j).(i)) <- (if i = !best then costs.(i) else 0.))
        ops
    done

let objective_of_order c order =
  let x = Encoding.assignment_of_order c.enc order in
  extend_assignment c order x;
  Problem.eval_objective c.enc.Encoding.problem (fun v -> x.(v))

let decode_operators c value order =
  let n = Array.length order in
  match c.aux with
  | No_aux | Bnl _ -> (
    match c.spec with
    | Cout -> Cost_model.optimal_operators ~pm:c.pm c.enc.Encoding.query order
    | Fixed_operator op -> Plan.of_order ~operators:(Array.make (n - 1) op) order
    | Choose_operator _ -> assert false)
  | Choose { ops; jos; _ } ->
    let operators =
      Array.init (n - 1) (fun j ->
          let best = ref 0 in
          Array.iteri (fun i v -> if value v > value jos.(j).(!best) then best := i) jos.(j);
          ops.(!best))
    in
    Plan.of_order ~operators order
