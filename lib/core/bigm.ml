let threshold_activation ~ub_log ~log_theta = ub_log -. log_theta
