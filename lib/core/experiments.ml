module Workload = Relalg.Workload
module Join_graph = Relalg.Join_graph

(* ------------------------------------------------------------------ *)
(* Figure 1: model sizes                                                *)
(* ------------------------------------------------------------------ *)

type fig1_config = {
  f1_sizes : int list;
  f1_queries_per_size : int;
  f1_shape : Join_graph.shape;
  f1_seed : int;
}

let default_fig1 =
  {
    f1_sizes = [ 10; 20; 30; 40; 50; 60 ];
    f1_queries_per_size = 20;
    f1_shape = Join_graph.Star;
    f1_seed = 1;
  }

type fig1_row = {
  f1_tables : int;
  f1_precision : Thresholds.precision;
  f1_median_vars : int;
  f1_median_constraints : int;
}

let median xs =
  match List.sort compare xs with
  | [] -> 0
  | sorted -> List.nth sorted (List.length sorted / 2)

(* Fixed-range ladders for the size plot: the paper uses a fixed number
   of thresholds per configuration, so sizes must not depend on the
   individual query's cardinalities. *)
let fig1_encoding_config precision =
  {
    Encoding.default_config with
    Encoding.precision;
    formulation = Encoding.Full_paper;
    adaptive_cap = false;
    max_modeled_card = 1e30;
  }

let figure1 ?(config = default_fig1) () =
  List.concat_map
    (fun n ->
      List.map
        (fun precision ->
          let counts =
            List.init config.f1_queries_per_size (fun i ->
                (* Hold the generator state explicitly: the draw sequence
                   is pinned to this [state] value, not to whatever the
                   ambient [Random] state happens to be. *)
                let seed = config.f1_seed + (1009 * i) in
                let state = Workload.rng ~seed ~shape:config.f1_shape ~num_tables:n in
                let q =
                  Workload.generate ~state ~seed ~shape:config.f1_shape ~num_tables:n ()
                in
                Analysis.predicted ~config:(fig1_encoding_config precision) q)
          in
          {
            f1_tables = n;
            f1_precision = precision;
            f1_median_vars = median (List.map (fun c -> c.Analysis.c_vars) counts);
            f1_median_constraints =
              median (List.map (fun c -> c.Analysis.c_constraints) counts);
          })
        [ Thresholds.Low; Thresholds.Medium; Thresholds.High ])
    config.f1_sizes

let pp_figure1 ppf rows =
  Format.fprintf ppf "Figure 1: median MILP size per query (%s)@."
    "paper formulation, fixed cardinality range";
  Format.fprintf ppf "%-8s %-10s %12s %14s@." "tables" "precision" "variables" "constraints";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8d %-10s %12d %14d@." r.f1_tables
        (Thresholds.precision_to_string r.f1_precision)
        r.f1_median_vars r.f1_median_constraints)
    rows

(* ------------------------------------------------------------------ *)
(* Figure 2: guaranteed optimality factor over time                     *)
(* ------------------------------------------------------------------ *)

type algorithm = Dp | Ilp of Thresholds.precision

let algorithm_to_string = function
  | Dp -> "DP"
  | Ilp p -> "ILP-" ^ Thresholds.precision_to_string p

type fig2_config = {
  f2_sizes : int list;
  f2_shapes : Join_graph.shape list;
  f2_queries_per_cell : int;
  f2_budget : float;
  f2_sample_times : float list;
  f2_seed : int;
}

let default_fig2 =
  {
    f2_sizes = [ 4; 6; 8; 10; 12 ];
    f2_shapes = [ Join_graph.Chain; Join_graph.Cycle; Join_graph.Star ];
    f2_queries_per_cell = 3;
    f2_budget = 3.;
    f2_sample_times = [ 0.5; 1.; 2.; 3. ];
    f2_seed = 42;
  }

type fig2_row = {
  f2_shape : Join_graph.shape;
  f2_tables : int;
  f2_algorithm : algorithm;
  f2_factors : (float * float option) list;
}

(* Guaranteed factor of one algorithm on one query, per sample time. *)
let run_one config algo q =
  match algo with
  | Dp ->
    let started = Milp.Budget.now () in
    let outcome = Dp_opt.Selinger.optimize ~time_limit:config.f2_budget q in
    let finished = Milp.Budget.now () -. started in
    List.map
      (fun t ->
        match outcome with
        | Dp_opt.Selinger.Complete _ when finished <= t ->
          (* DP is exhaustive: once finished, the plan is optimal. *)
          (t, Some 1.)
        | Dp_opt.Selinger.Complete _ | Dp_opt.Selinger.Timed_out _ -> (t, None))
      config.f2_sample_times
  | Ilp precision ->
    let opt_config =
      Optimizer.default_config
      |> Optimizer.with_precision precision
      |> Optimizer.with_time_limit config.f2_budget
    in
    let r = Optimizer.optimize ~config:opt_config q in
    (* Factor at time t: from the last trace point at or before t. *)
    List.map
      (fun t ->
        let best = ref None in
        List.iter
          (fun tp -> if tp.Optimizer.tp_elapsed <= t then best := Some tp)
          r.Optimizer.trace;
        let factor =
          match !best with
          | Some { Optimizer.tp_factor = Some f; _ } when Float.is_finite f -> Some f
          | _ -> None
        in
        (t, factor))
      config.f2_sample_times

let median_factors per_query_factors sample_times =
  List.mapi
    (fun i t ->
      let values =
        List.filter_map (fun factors -> snd (List.nth factors i)) per_query_factors
      in
      (* The paper reports medians; a missing value (no plan / no bound)
         dominates, so the median is defined only when a majority of
         queries have one. *)
      let missing = List.length per_query_factors - List.length values in
      if missing * 2 > List.length per_query_factors then (t, None)
      else
        match List.sort compare values with
        | [] -> (t, None)
        | sorted -> (t, Some (List.nth sorted (List.length sorted / 2))))
    sample_times

let figure2 ?(config = default_fig2) () =
  List.concat_map
    (fun shape ->
      List.concat_map
        (fun n ->
          let queries =
            (* Same per-query seed derivation as [Workload.generate_many],
               but with each query's generator state held explicitly. *)
            List.init config.f2_queries_per_cell (fun i ->
                let seed = config.f2_seed + (7919 * (i + 1)) in
                let state = Workload.rng ~seed ~shape ~num_tables:n in
                Workload.generate ~state ~seed ~shape ~num_tables:n ())
          in
          List.map
            (fun algo ->
              let per_query = List.map (run_one config algo) queries in
              {
                f2_shape = shape;
                f2_tables = n;
                f2_algorithm = algo;
                f2_factors = median_factors per_query config.f2_sample_times;
              })
            [ Dp; Ilp Thresholds.High; Ilp Thresholds.Medium; Ilp Thresholds.Low ])
        config.f2_sizes)
    config.f2_shapes

let pp_factor ppf = function
  | None -> Format.fprintf ppf "%10s" "-"
  | Some f -> if f > 1e4 then Format.fprintf ppf "%10.2e" f else Format.fprintf ppf "%10.2f" f

let pp_figure2 ppf rows =
  Format.fprintf ppf
    "Figure 2: median guaranteed optimality factor (Cost/LB) over optimization time@.";
  let times = match rows with [] -> [] | r :: _ -> List.map fst r.f2_factors in
  Format.fprintf ppf "%-7s %-7s %-12s" "graph" "tables" "algorithm";
  List.iter (fun t -> Format.fprintf ppf "%10s" (Printf.sprintf "@%gs" t)) times;
  Format.fprintf ppf "@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-7s %-7d %-12s"
        (Join_graph.shape_to_string r.f2_shape)
        r.f2_tables
        (algorithm_to_string r.f2_algorithm);
      List.iter (fun (_, f) -> pp_factor ppf f) r.f2_factors;
      Format.fprintf ppf "@.")
    rows

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2                                                       *)
(* ------------------------------------------------------------------ *)

let pp_inventory title ppf rows =
  Format.fprintf ppf "%s@." title;
  List.iter (fun (sym, sem) -> Format.fprintf ppf "  %-55s %s@." sym sem) rows

let pp_table1 ppf () =
  pp_inventory "Table 1: variables of the join-ordering MILP" ppf Analysis.variable_inventory

let pp_table2 ppf () =
  pp_inventory "Table 2: constraints of the join-ordering MILP" ppf Analysis.constraint_inventory
