module Problem = Milp.Problem
module Linexpr = Milp.Linexpr
module Linearize = Milp.Linearize
module Cost_model = Relalg.Cost_model
module Plan = Relalg.Plan

type t = {
  enc : Encoding.t;
  pm : Cost_model.page_model;
  priced : (int * int * float) list;
  (* (encoded index, query predicate index, eval cost) for priced
     non-unary predicates *)
  pco : (int, Problem.var array) Hashtbl.t;  (* encoded index -> per-join pco *)
  lcob : Problem.var array;  (* per join *)
  ctob : Problem.var array array;  (* [j][r] *)
  cob : Problem.var array;
  charges : (int, Problem.var array) Hashtbl.t;  (* encoded index -> pco*cob products *)
}

let encoding t = t.enc

(* log10 of the output cardinality of join j BEFORE its newly evaluated
   predicates, as a linear expression: the tables of the next outer
   operand (all tables for the last join) and the predicates applied in
   THIS join's outer operand. *)
let lcob_rhs enc j =
  let n = Relalg.Query.num_tables enc.Encoding.query in
  let jmax = enc.Encoding.num_joins - 1 in
  let table_part = ref Linexpr.zero in
  for tbl = 0 to n - 1 do
    let logc = log10 enc.Encoding.effective_card.(tbl) in
    if j < jmax then
      table_part := Linexpr.add !table_part (Linexpr.scale logc enc.Encoding.tio_expr.(j + 1).(tbl))
    else table_part := Linexpr.add !table_part (Linexpr.const logc)
  done;
  let pred_part =
    if j = 0 then Linexpr.zero
    else
      Linexpr.of_terms
        (Array.to_list (Array.mapi (fun pi v -> (v, enc.Encoding.log10_sels.(pi))) enc.Encoding.pao.(j)))
  in
  Linexpr.add !table_part pred_part

let install ?(pm = Cost_model.default_page_model) enc =
  let p = enc.Encoding.problem in
  let jmax = enc.Encoding.num_joins - 1 in
  let q = enc.Encoding.query in
  let ladder = enc.Encoding.ladder in
  let l = Thresholds.num_thresholds ladder in
  let priced =
    List.filter_map
      (fun pi ->
        let id = enc.Encoding.pred_ids.(pi) in
        if id < 0 then None
        else
          let c = q.Relalg.Query.predicates.(id).Relalg.Predicate.eval_cost in
          if c > 0. then Some (pi, id, c) else None)
      (List.init (Encoding.num_encoded_preds enc) (fun i -> i))
  in
  (* cob ladder per join (0 .. jmax). *)
  let max_log =
    Array.fold_left (fun acc c -> acc +. log10 c) 0. enc.Encoding.effective_card
  in
  (* Shared with the staircase big-M below — see Bigm. *)
  let lcob_ub = max_log +. 1. in
  let lcob =
    Array.init enc.Encoding.num_joins (fun j ->
        Problem.add_var p ~name:(Printf.sprintf "lcob_j%d" j) ~lb:(-100.) ~ub:lcob_ub ())
  in
  let ctob =
    Array.init enc.Encoding.num_joins (fun j ->
        Array.init l (fun r ->
            Problem.add_var p ~name:(Printf.sprintf "ctob_r%d_j%d" r j) ~kind:Problem.Binary ()))
  in
  let cob_ub = Array.fold_left ( +. ) 0. ladder.Thresholds.deltas in
  let cob =
    Array.init enc.Encoding.num_joins (fun j ->
        Problem.add_var p ~name:(Printf.sprintf "cob_j%d" j) ~lb:0. ~ub:cob_ub ())
  in
  for j = 0 to jmax do
    Problem.add_constr p
      ~name:(Printf.sprintf "lcob_def_j%d" j)
      (Linexpr.sub (Linexpr.var lcob.(j)) (lcob_rhs enc j))
      Problem.Eq 0.;
    for r = 0 to l - 1 do
      let log_theta = ladder.Thresholds.log10_thetas.(r) in
      let big_m = Bigm.threshold_activation ~ub_log:lcob_ub ~log_theta in
      Problem.add_constr p
        ~name:(Printf.sprintf "ctob_def_r%d_j%d" r j)
        Linexpr.(sub (var lcob.(j)) (var ~coeff:big_m ctob.(j).(r)))
        Problem.Le log_theta
    done;
    Problem.add_constr p
      ~name:(Printf.sprintf "cob_def_j%d" j)
      (Linexpr.of_terms
         ((cob.(j), -1.)
         :: Array.to_list (Array.mapi (fun r v -> (v, ladder.Thresholds.deltas.(r))) ctob.(j))))
      Problem.Eq 0.
  done;
  (* pco variables and their definitions. *)
  let pco_tbl = Hashtbl.create 8 and charges_tbl = Hashtbl.create 8 in
  List.iter
    (fun (pi, _, eval_cost) ->
      let pco =
        Array.init enc.Encoding.num_joins (fun j ->
            Problem.add_var p ~name:(Printf.sprintf "pco_p%d_j%d" pi j) ~kind:Problem.Binary ())
      in
      for j = 0 to jmax do
        let rhs_expr =
          (* pao p (j+1) - pao p j, with the boundary conventions. *)
          let next = if j = jmax then Linexpr.const 1. else Linexpr.var enc.Encoding.pao.(j + 1).(pi) in
          let cur = if j = 0 then Linexpr.zero else Linexpr.var enc.Encoding.pao.(j).(pi) in
          Linexpr.sub next cur
        in
        Problem.add_constr p
          ~name:(Printf.sprintf "pco_def_p%d_j%d" pi j)
          (Linexpr.sub (Linexpr.var pco.(j)) rhs_expr)
          Problem.Eq 0.
      done;
      Hashtbl.replace pco_tbl pi pco;
      (* Evaluation charges: eval_cost * pco * cob per join. *)
      ignore eval_cost;
      let charges =
        Array.init enc.Encoding.num_joins (fun j ->
            Linearize.product_binary_continuous p
              ~name:(Printf.sprintf "evalq_p%d_j%d" pi j)
              ~binary:pco.(j) ~continuous:cob.(j) ~lb:0. ~ub:cob_ub ())
      in
      Hashtbl.replace charges_tbl pi charges)
    priced;
  (* Objective: hash cost plus evaluation charges. *)
  let obj = ref Linexpr.zero in
  for j = 0 to jmax do
    obj :=
      Linexpr.add !obj
        (Linexpr.scale 3.
           (Linexpr.add
              (Cost_enc.outer_expr enc (Cost_enc.g_pages pm) j)
              (Cost_enc.inner_expr enc (Cost_enc.g_pages pm) j)))
  done;
  List.iter
    (fun (pi, _, eval_cost) ->
      Array.iter
        (fun v -> obj := Linexpr.add_term !obj v eval_cost)
        (Hashtbl.find charges_tbl pi))
    priced;
  Problem.set_objective p Problem.Minimize !obj;
  Problem.set_meta p "joinopt.ext.expensive"
    (String.concat "," (List.map (fun (pi, _, _) -> string_of_int pi) priced));
  { enc; pm; priced; pco = pco_tbl; lcob; ctob; cob; charges = charges_tbl }

(* ------------------------------------------------------------------ *)
(* Schedules and honest assignments                                     *)
(* ------------------------------------------------------------------ *)

(* First join of [order] at which encoded predicate [pi] is applicable. *)
let first_applicable t order pi =
  let n = Array.length order in
  let mask_needed = t.enc.Encoding.pred_masks.(pi) in
  let rec go j mask =
    let mask = mask lor (1 lsl order.(j + 1)) in
    if mask_needed land mask = mask_needed then j
    else if j = n - 2 then j
    else go (j + 1) mask
  in
  go 0 (1 lsl order.(0))

let earliest_schedule t order =
  let q = t.enc.Encoding.query in
  let m = Relalg.Query.num_predicates q in
  let schedule = Array.make m 0 in
  Array.iteri
    (fun pi id ->
      if id >= 0 then schedule.(id) <- first_applicable t order pi)
    t.enc.Encoding.pred_ids;
  schedule

(* Applied encoded-predicate bitmask in the outer operand of join j
   (i.e. after join j-1) under a schedule: scheduled non-unary real
   predicates, groups once all members are applied. *)
let applied_mask t schedule j =
  let enc = t.enc in
  let acc = ref 0 in
  (* A predicate is applied in the outer operand of join j exactly when
     its scheduled evaluation happened during an earlier join (schedules
     are validated to be at or after the first applicable join). *)
  Array.iteri
    (fun pi id -> if id >= 0 && schedule.(id) < j then acc := !acc lor (1 lsl pi))
    enc.Encoding.pred_ids;
  (* Groups fire when every non-unary member is applied (unary members
     are applied from the start). *)
  Array.iteri
    (fun pi id ->
      if id < 0 then begin
        let q = enc.Encoding.query in
        let gi = pi - (Encoding.num_encoded_preds enc - Array.length q.Relalg.Query.correlations) in
        let c = q.Relalg.Query.correlations.(gi) in
        let member_applied qpi =
          let p = q.Relalg.Query.predicates.(qpi) in
          List.length p.Relalg.Predicate.pred_tables = 1 || schedule.(qpi) < j
        in
        if List.for_all member_applied c.Relalg.Predicate.corr_members then
          acc := !acc lor (1 lsl pi)
      end)
    enc.Encoding.pred_ids;
  !acc

(* log10 of join j's output before its newly evaluated predicates. *)
let log10_cob t order schedule j =
  let enc = t.enc in
  let n = Array.length order in
  let logc = ref 0. in
  for k = 0 to min (j + 1) (n - 1) do
    logc := !logc +. log10 enc.Encoding.effective_card.(order.(k))
  done;
  let applied = applied_mask t schedule j in
  Array.iteri
    (fun pi ls -> if applied land (1 lsl pi) <> 0 then logc := !logc +. ls)
    enc.Encoding.log10_sels;
  !logc

let assignment_of t order schedule =
  let enc = t.enc in
  let jmax = enc.Encoding.num_joins - 1 in
  let x = Array.make (Problem.num_vars enc.Encoding.problem) 0. in
  (* Table membership and inner cardinalities (as in the base encoding). *)
  for j = 0 to jmax do
    if Array.length enc.Encoding.tio.(j) > 0 then
      for k = 0 to j do
        x.(enc.Encoding.tio.(j).(order.(k))) <- 1.
      done;
    x.(enc.Encoding.tii.(j).(order.(j + 1))) <- 1.;
    x.(enc.Encoding.ci.(j)) <- enc.Encoding.effective_card.(order.(j + 1))
  done;
  (* pao per the schedule; lco / cto / co follow. *)
  for j = 1 to jmax do
    let applied = applied_mask t schedule j in
    Array.iteri (fun pi v -> if applied land (1 lsl pi) <> 0 then x.(v) <- 1.) enc.Encoding.pao.(j);
    let lc =
      let logc = ref 0. in
      for k = 0 to j do
        logc := !logc +. log10 enc.Encoding.effective_card.(order.(k))
      done;
      Array.iteri
        (fun pi ls -> if applied land (1 lsl pi) <> 0 then logc := !logc +. ls)
        enc.Encoding.log10_sels;
      !logc
    in
    x.(enc.Encoding.lco.(j)) <- lc;
    let hits = Thresholds.reached enc.Encoding.ladder lc in
    Array.iteri (fun r v -> if hits.(r) then x.(v) <- 1.) enc.Encoding.cto.(j);
    x.(enc.Encoding.co.(j)) <- Thresholds.approx_card enc.Encoding.ladder lc
  done;
  (* Extension variables. *)
  for j = 0 to jmax do
    let lc = log10_cob t order schedule j in
    x.(t.lcob.(j)) <- lc;
    let hits = Thresholds.reached enc.Encoding.ladder lc in
    Array.iteri (fun r v -> if hits.(r) then x.(v) <- 1.) t.ctob.(j);
    x.(t.cob.(j)) <- Thresholds.approx_card enc.Encoding.ladder lc
  done;
  List.iter
    (fun (pi, id, _) ->
      let pco = Hashtbl.find t.pco pi and charges = Hashtbl.find t.charges pi in
      let j_eval = schedule.(id) in
      x.(pco.(j_eval)) <- 1.;
      x.(charges.(j_eval)) <- x.(t.cob.(j_eval)))
    t.priced;
  x

let objective_of t order schedule =
  let x = assignment_of t order schedule in
  Problem.eval_objective t.enc.Encoding.problem (fun v -> x.(v))

let decode_schedule t value order =
  let enc = t.enc in
  let jmax = enc.Encoding.num_joins - 1 in
  let q = enc.Encoding.query in
  let m = Relalg.Query.num_predicates q in
  let schedule = earliest_schedule t order in
  Array.iteri
    (fun pi id ->
      if id >= 0 then begin
        (* Evaluated during join j when pao becomes 1 at j+1. *)
        let rec find j =
          if j > jmax then jmax
          else if j = jmax then jmax
          else if value enc.Encoding.pao.(j + 1).(pi) > 0.5 then j
          else find (j + 1)
        in
        let decoded = find 0 in
        schedule.(id) <- max decoded (first_applicable t order pi)
      end)
    enc.Encoding.pred_ids;
  ignore m;
  schedule

let optimize ?(pm = Cost_model.default_page_model) ?(config = Encoding.default_config)
    ?(solver = { Milp.Solver.default_params with Milp.Solver.cut_rounds = 0 }) q =
  let enc = Encoding.build ~config q in
  let t = install ~pm enc in
  let greedy_order = Dp_opt.Greedy.order q in
  let mip_start =
    {
      Milp.Warm_start.ws_x = assignment_of t greedy_order (earliest_schedule t greedy_order);
      ws_source = "greedy";
    }
  in
  let outcome = (Milp.Solver.solve ~params:solver ~mip_start enc.Encoding.problem).Milp.Solver.result in
  match outcome.Milp.Branch_bound.o_x with
  | Some x ->
    let order = Encoding.order_of_assignment enc (fun v -> x.(v)) in
    let schedule = decode_schedule t (fun v -> x.(v)) order in
    let n = Array.length order in
    let plan = Plan.of_order ~operators:(Array.make (n - 1) Plan.Hash_join) order in
    let true_cost = Cost_model.plan_cost_with_schedule ~pm q plan ~schedule in
    (Some (plan, schedule, true_cost), outcome)
  | None -> (None, outcome)
