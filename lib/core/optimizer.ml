module Problem = Milp.Problem
module Solver = Milp.Solver
module Branch_bound = Milp.Branch_bound
module Plan = Relalg.Plan
module Cost_model = Relalg.Cost_model

type warm_start_policy =
  | Ws_off
  | Ws_greedy
  | Ws_portfolio
  | Ws_plan of Plan.t

let warm_start_to_string = function
  | Ws_off -> "off"
  | Ws_greedy -> "greedy"
  | Ws_portfolio -> "portfolio"
  | Ws_plan _ -> "plan"

let warm_start_of_string = function
  | "off" -> Ok Ws_off
  | "greedy" -> Ok Ws_greedy
  | "portfolio" -> Ok Ws_portfolio
  | s -> Error (Printf.sprintf "unknown warm-start policy %S (expected off|greedy|portfolio)" s)

(* The monolithic encoding path (Card, Cost_model, Plan.prefix_mask,
   the MILP itself) works in int bitmasks and tops out at this many
   tables; anything larger must go through the decomposition subsystem
   (lib/decomp), which never builds a monolithic mask. *)
let max_monolithic_tables = 62

type decomp_policy = Dc_off | Dc_auto | Dc_force

let decomp_policy_to_string = function
  | Dc_off -> "off"
  | Dc_auto -> "auto"
  | Dc_force -> "force"

let decomp_policy_of_string = function
  | "off" -> Ok Dc_off
  | "auto" -> Ok Dc_auto
  | "force" -> Ok Dc_force
  | s -> Error (Printf.sprintf "unknown decomposition policy %S (expected off|auto|force)" s)

type seam_heuristic = Seam_ikkbz | Seam_greedy

let seam_to_string = function Seam_ikkbz -> "ikkbz" | Seam_greedy -> "greedy"

let seam_of_string = function
  | "ikkbz" -> Ok Seam_ikkbz
  | "greedy" -> Ok Seam_greedy
  | s -> Error (Printf.sprintf "unknown seam heuristic %S (expected ikkbz|greedy)" s)

type decomp_config = {
  dc_policy : decomp_policy;
  dc_threshold : int;
  dc_max_cluster : int;
  dc_seam : seam_heuristic;
}

let default_decomp =
  (* The auto threshold sits where the monolithic MILP stops returning
     certified plans inside interactive budgets; the hard 62-table mask
     ceiling applies regardless (auto always decomposes above it). *)
  { dc_policy = Dc_off; dc_threshold = 30; dc_max_cluster = 12; dc_seam = Seam_ikkbz }

type config = {
  encoding : Encoding.config;
  cost : Cost_enc.spec;
  pm : Cost_model.page_model;
  solver : Solver.params;
  warm_start : warm_start_policy;
  decomp : decomp_config;
}

let default_config =
  {
    encoding = Encoding.default_config;
    cost = Cost_enc.Fixed_operator Plan.Hash_join;
    pm = Cost_model.default_page_model;
    (* Root Gomory cuts rarely pay off on the big-M threshold rows and
       each round costs a cold LP solve; leave them opt-in here. *)
    solver = { Solver.default_params with Solver.cut_rounds = 0 };
    warm_start = Ws_greedy;
    decomp = default_decomp;
  }

let with_decomp dc config =
  if dc.dc_threshold < 2 then invalid_arg "Optimizer.with_decomp: threshold must be >= 2";
  if dc.dc_max_cluster < 2 || dc.dc_max_cluster > max_monolithic_tables then
    invalid_arg
      (Printf.sprintf "Optimizer.with_decomp: max cluster size must be in [2, %d]"
         max_monolithic_tables);
  { config with decomp = dc }

(* Should [q] take the decomposition path under this config? [Dc_auto]
   decomposes past the configured threshold and always past the hard
   mask ceiling; [Dc_force] decomposes any query that can be split
   (>= 3 tables leaves at least two clusters or a seam worth the name). *)
let should_decompose config q =
  let n = Relalg.Query.num_tables q in
  match config.decomp.dc_policy with
  | Dc_off -> false
  | Dc_force -> n > 2
  | Dc_auto -> n > config.decomp.dc_threshold || n > max_monolithic_tables

let with_precision precision config =
  { config with encoding = { config.encoding with Encoding.precision } }

let with_time_limit t config = { config with solver = Solver.with_time_limit t config.solver }

let with_jobs n config = { config with solver = Solver.with_jobs n config.solver }

let with_checkpoint ck config = { config with solver = Solver.with_checkpoint ck config.solver }

let with_lint level config = { config with solver = Solver.with_lint level config.solver }

let with_warm_start plan config =
  { config with warm_start = (match plan with Some p -> Ws_plan p | None -> Ws_greedy) }

let with_warm_start_policy ws config = { config with warm_start = ws }

type trace_point = {
  tp_elapsed : float;
  tp_objective : float option;
  tp_bound : float;
  tp_factor : float option;
}

type provenance =
  [ `Milp_certified | `Milp_uncertified | `Recovered of int | `Fallback_dp | `Fallback_heuristic ]

let provenance_to_string = function
  | `Milp_certified -> "milp-certified"
  | `Milp_uncertified -> "milp-uncertified"
  | `Recovered rung -> Printf.sprintf "milp-recovered(rung %d)" rung
  | `Fallback_dp -> "fallback-dp"
  | `Fallback_heuristic -> "fallback-heuristic"

type result = {
  plan : Plan.t option;
  provenance : provenance option;
  certificate : Solver.certificate;
  true_cost : float option;
  objective : float option;
  bound : float;
  status : Branch_bound.status;
  stopped : Branch_bound.stop_reason;
  resumed : bool;
  trace : trace_point list;
  nodes : int;
  num_vars : int;
  num_constrs : int;
  elapsed : float;
  lint : Milp.Lint.report option;
  seed : Milp.Warm_start.seed option;
}

let guaranteed_factor ~objective ~bound =
  if bound <= 0. then infinity else objective /. bound

let exact_metric = function
  | Cost_enc.Cout -> Cost_model.Cout
  | Cost_enc.Fixed_operator _ | Cost_enc.Choose_operator _ -> Cost_model.Operator_costs

let trace_of_progress pr =
  let tp_factor =
    match pr.Branch_bound.pr_incumbent with
    | Some obj -> Some (guaranteed_factor ~objective:obj ~bound:pr.Branch_bound.pr_bound)
    | None -> None
  in
  {
    tp_elapsed = pr.Branch_bound.pr_elapsed;
    tp_objective = pr.Branch_bound.pr_incumbent;
    tp_bound = pr.Branch_bound.pr_bound;
    tp_factor;
  }

(* Operator policy for the fallback planners, matching the MILP spec. *)
let fallback_operators = function
  | Cost_enc.Fixed_operator op -> Dp_opt.Selinger.Fixed op
  | Cost_enc.Choose_operator _ -> Dp_opt.Selinger.Best_per_join
  | Cost_enc.Cout -> Dp_opt.Selinger.Fixed Plan.Hash_join

(* Last line of defense when the MILP path yields no usable plan: exact
   Selinger DP for small queries (it is fast there and provably optimal),
   then IKKBZ on tree-shaped queries, then the greedy heuristic — which
   always succeeds. *)
let fallback_plan ?(allow_dp = true) config q =
  let metric = exact_metric config.cost in
  let operators = fallback_operators config.cost in
  let dp =
    if allow_dp && Relalg.Query.num_tables q <= 12 then
      match Dp_opt.Selinger.optimize ~metric ~pm:config.pm ~operators ~time_limit:5.0 q with
      | Dp_opt.Selinger.Complete r -> Some (r.Dp_opt.Selinger.plan, r.Dp_opt.Selinger.cost, `Fallback_dp)
      | Dp_opt.Selinger.Timed_out _ -> None
    else None
  in
  match dp with
  | Some _ as r -> r
  | None -> (
    match Dp_opt.Ikkbz.plan q with
    | Ok (plan, _) ->
      (* IKKBZ optimizes C_out; report the cost under the configured metric. *)
      Some (plan, Cost_model.plan_cost ~metric ~pm:config.pm q plan, `Fallback_heuristic)
    | Error _ ->
      let plan, cost = Dp_opt.Greedy.plan ~metric ~pm:config.pm ~operators q in
      Some (plan, cost, `Fallback_heuristic))

let optimize ?(config = default_config) ?budget ?resume ?on_progress q =
  if Relalg.Query.num_tables q > max_monolithic_tables then
    invalid_arg
      (Printf.sprintf
         "Optimizer.optimize: %d tables exceeds the %d-table monolithic encoding ceiling — \
          route the query through decomposition (--decompose=auto)"
         (Relalg.Query.num_tables q) max_monolithic_tables);
  let budget =
    match budget with
    | Some b -> b
    | None ->
      Milp.Budget.create ?limit:config.solver.Solver.bb.Branch_bound.time_limit ()
  in
  let enc = Encoding.build ~config:config.encoding q in
  let cost = Cost_enc.install ~pm:config.pm enc config.cost in
  let problem = enc.Encoding.problem in
  (* All candidate plans go through the metadata-driven translation in
     {!Milp.Warm_start}: the MILP side reconstructs the assignment from
     the [joinopt.*] stamps alone, and branch & bound re-certifies it
     against the original rows before seeding, so a bad candidate can
     cost us the warm start but never the answer. *)
  let assignment_of (plan : Plan.t) =
    let operators = Array.map Plan.operator_to_string plan.Plan.operators in
    Milp.Warm_start.assignment_of_plan ~operators problem plan.Plan.order
  in
  let metric = exact_metric config.cost in
  let operators = fallback_operators config.cost in
  let candidate_of ~source plan =
    match assignment_of plan with
    | Ok ws_x -> Some { Milp.Warm_start.ws_x; ws_source = source }
    | Error msg ->
      Logs.warn (fun m -> m "%s warm-start candidate dropped: %s" source msg);
      None
  in
  let greedy_candidate () =
    let plan, _ = Dp_opt.Greedy.plan ~metric ~pm:config.pm ~operators q in
    candidate_of ~source:"greedy" plan
  in
  (* Race the heuristic portfolio under a small slice of the solve
     budget: greedy and IKKBZ are effectively instant, annealing gets the
     slice as its stopping clock. {!Milp.Warm_start.race} certifies every
     finisher and keeps the best certified objective (first listed wins
     ties, so the outcome is deterministic). *)
  let portfolio_candidate () =
    let limit =
      match Milp.Budget.remaining budget with
      | Some r -> Float.max 0.05 (Float.min 2.0 (0.1 *. r))
      | None -> 2.0
    in
    let slice = Milp.Budget.sub budget ~limit () in
    let raw plan = match assignment_of plan with Ok x -> Some x | Error _ -> None in
    let racers =
      [
        ("greedy", fun () -> raw (fst (Dp_opt.Greedy.plan ~metric ~pm:config.pm ~operators q)));
        ( "ikkbz",
          fun () ->
            match Dp_opt.Ikkbz.plan q with
            | Ok (plan, _) -> raw plan
            | Error Dp_opt.Ikkbz.Not_a_tree -> None );
        ( "annealing",
          fun () ->
            let time_limit =
              match Milp.Budget.remaining slice with Some r -> r | None -> limit
            in
            let r =
              Dp_opt.Annealing.simulated_annealing ~metric ~pm:config.pm ~seed:7 ~time_limit q
            in
            raw r.Dp_opt.Annealing.plan );
      ]
    in
    let best, rejected = Milp.Warm_start.race problem racers in
    List.iter
      (fun (src, msg) -> Logs.debug (fun m -> m "portfolio candidate %s rejected: %s" src msg))
      rejected;
    match best with
    | Some (cand, obj) ->
      Logs.info (fun m ->
          m "portfolio warm start: %s wins with objective %g" cand.Milp.Warm_start.ws_source obj);
      Some cand
    | None -> None
  in
  let mip_start =
    if Relalg.Query.num_tables q < 2 then None
    else
      match config.warm_start with
      | Ws_off -> None
      | Ws_greedy -> greedy_candidate ()
      | Ws_portfolio -> portfolio_candidate ()
      (* A caller-supplied plan (e.g. a cached plan for the same canonical
         query at a different precision) beats the heuristics; an invalid
         one is ignored, never fatal. *)
      | Ws_plan plan when Plan.validate q plan = Ok () -> candidate_of ~source:"plan" plan
      | Ws_plan _ ->
        Logs.warn (fun m -> m "warm-start plan does not match the query; using the greedy seed");
        greedy_candidate ()
  in
  let wrap_progress =
    match on_progress with
    | None -> None
    | Some f -> Some (fun pr -> f (trace_of_progress pr))
  in
  let outcome =
    Solver.solve ~params:config.solver ~budget ?resume ?mip_start
      ?on_progress:wrap_progress enc.Encoding.problem
  in
  let bb = outcome.Solver.result in
  (* Decoding the winning assignment can itself fail under numeric
     trouble (an order that is not a permutation, a missing operator
     selection); treat that exactly like having no solution. *)
  let decoded =
    match bb.Branch_bound.o_x with
    | None -> None
    | Some x -> (
      match
        let order = Encoding.order_of_assignment enc (fun v -> x.(v)) in
        Cost_enc.decode_operators cost (fun v -> x.(v)) order
      with
      | plan -> (
        match Plan.validate q plan with
        | Ok () -> Some plan
        | Error msg ->
          Logs.warn (fun m -> m "decoded plan failed validation: %s" msg);
          None)
      | exception Failure msg ->
        Logs.warn (fun m -> m "decoding the MILP solution failed: %s" msg);
        None)
  in
  let plan, true_cost, provenance =
    match decoded with
    | Some plan ->
      let metric = exact_metric config.cost in
      let prov =
        if outcome.Solver.rungs > 0 then `Recovered outcome.Solver.rungs
        else
          match outcome.Solver.certificate with
          | Solver.Certified _ -> `Milp_certified
          | Solver.Uncertified _ | Solver.No_incumbent -> `Milp_uncertified
      in
      (Some plan, Some (Cost_model.plan_cost ~metric ~pm:config.pm q plan), Some prov)
    | None -> (
      (* After a cancellation the user wants out *now*: skip the (slow)
         exact-DP fallback rung and settle for a heuristic plan. *)
      match fallback_plan ~allow_dp:(not (Milp.Budget.cancelled budget)) config q with
      | Some (plan, fcost, prov) ->
        Logs.info (fun m ->
            m "MILP produced no usable plan; %s supplied one" (provenance_to_string prov));
        (Some plan, Some fcost, Some prov)
      | None -> (None, None, None))
  in
  {
    plan;
    provenance;
    certificate = outcome.Solver.certificate;
    true_cost;
    objective = bb.Branch_bound.o_objective;
    bound = bb.Branch_bound.o_bound;
    status = bb.Branch_bound.o_status;
    stopped = bb.Branch_bound.o_stop;
    resumed = outcome.Solver.resumed;
    trace = List.map trace_of_progress bb.Branch_bound.o_trace;
    nodes = bb.Branch_bound.o_nodes;
    num_vars = Problem.num_vars enc.Encoding.problem;
    num_constrs = Problem.num_constrs enc.Encoding.problem;
    elapsed = Milp.Budget.elapsed budget;
    lint = outcome.Solver.lint_report;
    seed = bb.Branch_bound.o_seed;
  }
