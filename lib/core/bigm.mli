(** The one audited big-M derivation shared by every threshold staircase.

    A threshold-activation row has the shape

    {v lco - M * cto <= log10 theta v}

    where [lco] is a log-cardinality variable with declared upper bound
    [ub_log] and [cto] the binary that fires when the cardinality
    exceeds [theta]. The smallest constant that makes the row vacuous
    once [cto = 1] is exactly [ub_log - log10 theta]; anything larger
    weakens the LP relaxation, anything smaller cuts feasible points.
    {!Milp.Lint} re-derives the same constant from the declared bounds
    (codes [L302]/[L303]), so a drift between an encoder and this helper
    is caught statically. *)

val threshold_activation : ub_log:float -> log_theta:float -> float
(** [threshold_activation ~ub_log ~log_theta] is the tight big-M
    [ub_log -. log_theta] for the row above. The result is non-positive
    exactly when the threshold sits at or above the operand's upper
    bound — the ladder's top rung may overshoot by up to its tolerance
    factor — in which case the row is vacuous in both indicator states
    and the constant's magnitude is irrelevant. *)
