module Problem = Milp.Problem
module Linexpr = Milp.Linexpr
module Linearize = Milp.Linearize
module Cost_model = Relalg.Cost_model

type variant =
  | Hash
  | Sort_both_merge
  | Merge_outer_presorted
  | Merge_inner_presorted
  | Merge_both_presorted

let all_variants =
  [ Hash; Sort_both_merge; Merge_outer_presorted; Merge_inner_presorted; Merge_both_presorted ]

let variant_to_string = function
  | Hash -> "hash"
  | Sort_both_merge -> "sort-both-merge"
  | Merge_outer_presorted -> "merge-outer-presorted"
  | Merge_inner_presorted -> "merge-inner-presorted"
  | Merge_both_presorted -> "merge-both-presorted"

(* Whether the variant's output arrives sorted, and which inputs it needs
   presorted. *)
let produces_sorted = function
  | Hash -> false
  | Sort_both_merge | Merge_outer_presorted | Merge_inner_presorted | Merge_both_presorted ->
    true

let needs_outer_sorted = function
  | Merge_outer_presorted | Merge_both_presorted -> true
  | Hash | Sort_both_merge | Merge_inner_presorted -> false

let needs_inner_sorted = function
  | Merge_inner_presorted | Merge_both_presorted -> true
  | Hash | Sort_both_merge | Merge_outer_presorted -> false

let variant_cost pm variant ~outer_card ~inner_card =
  let pgo = Cost_enc.g_pages pm outer_card and pgi = Cost_enc.g_pages pm inner_card in
  let sort_o = Cost_enc.g_smj pm outer_card and sort_i = Cost_enc.g_smj pm inner_card in
  match variant with
  | Hash -> 3. *. (pgo +. pgi)
  | Sort_both_merge -> sort_o +. sort_i
  | Merge_outer_presorted -> pgo +. sort_i
  | Merge_inner_presorted -> sort_o +. pgi
  | Merge_both_presorted -> pgo +. pgi

type t = {
  enc : Encoding.t;
  pm : Cost_model.page_model;
  sorted_mask : int;
  jos : Problem.var array array;  (* [j][variant index] *)
  pjc : Problem.var array array;
  ajc : Problem.var array array;
  ohp : Problem.var array;  (* outer-sorted property, per join *)
}

let encoding t = t.enc

(* Outer / inner cost expressions per variant, over the encoding. *)
let variant_cost_expr enc pm variant j =
  let outer g = Cost_enc.outer_expr enc g j and inner g = Cost_enc.inner_expr enc g j in
  match variant with
  | Hash -> Linexpr.scale 3. (Linexpr.add (outer (Cost_enc.g_pages pm)) (inner (Cost_enc.g_pages pm)))
  | Sort_both_merge -> Linexpr.add (outer (Cost_enc.g_smj pm)) (inner (Cost_enc.g_smj pm))
  | Merge_outer_presorted ->
    Linexpr.add (outer (Cost_enc.g_pages pm)) (inner (Cost_enc.g_smj pm))
  | Merge_inner_presorted ->
    Linexpr.add (outer (Cost_enc.g_smj pm)) (inner (Cost_enc.g_pages pm))
  | Merge_both_presorted ->
    Linexpr.add (outer (Cost_enc.g_pages pm)) (inner (Cost_enc.g_pages pm))

let variant_cost_bound enc pm variant =
  let outer g = Cost_enc.outer_upper_bound enc g in
  let inner g =
    Array.fold_left (fun acc c -> max acc (g c)) 0. enc.Encoding.effective_card
  in
  match variant with
  | Hash -> 3. *. (outer (Cost_enc.g_pages pm) +. inner (Cost_enc.g_pages pm))
  | Sort_both_merge -> outer (Cost_enc.g_smj pm) +. inner (Cost_enc.g_smj pm)
  | Merge_outer_presorted -> outer (Cost_enc.g_pages pm) +. inner (Cost_enc.g_smj pm)
  | Merge_inner_presorted -> outer (Cost_enc.g_smj pm) +. inner (Cost_enc.g_pages pm)
  | Merge_both_presorted -> outer (Cost_enc.g_pages pm) +. inner (Cost_enc.g_pages pm)

let install ?(pm = Cost_model.default_page_model) ~sorted_tables enc =
  let p = enc.Encoding.problem in
  let n = Relalg.Query.num_tables enc.Encoding.query in
  let sorted_mask = List.fold_left (fun m t -> m lor (1 lsl t)) 0 sorted_tables in
  let num_joins = enc.Encoding.num_joins in
  let nv = List.length all_variants in
  let jos =
    Array.init num_joins (fun j ->
        Array.init nv (fun i ->
            Problem.add_var p
              ~name:(Printf.sprintf "jos_j%d_v%d" j i)
              ~kind:Problem.Binary ()))
  in
  let pjc =
    Array.init num_joins (fun j ->
        Array.of_list
          (List.mapi
             (fun i v ->
               let bound = variant_cost_bound enc pm v in
               let var =
                 Problem.add_var p ~name:(Printf.sprintf "pjc_j%d_v%d" j i) ~lb:0. ~ub:bound ()
               in
               Problem.add_constr p
                 ~name:(Printf.sprintf "pjc_def_j%d_v%d" j i)
                 (Linexpr.sub (Linexpr.var var) (variant_cost_expr enc pm v j))
                 Problem.Eq 0.;
               var)
             all_variants))
  in
  let ajc =
    Array.init num_joins (fun j ->
        Array.of_list
          (List.mapi
             (fun i v ->
               Linearize.product_binary_continuous p
                 ~name:(Printf.sprintf "ajc_j%d_v%d" j i)
                 ~binary:jos.(j).(i) ~continuous:pjc.(j).(i) ~lb:0.
                 ~ub:(variant_cost_bound enc pm v)
                 ())
             all_variants))
  in
  (* One operator per join. *)
  for j = 0 to num_joins - 1 do
    Problem.add_constr p
      ~name:(Printf.sprintf "one_variant_j%d" j)
      (Linexpr.of_terms (Array.to_list (Array.map (fun v -> (v, 1.)) jos.(j))))
      Problem.Eq 1.
  done;
  (* Outer-sorted property. *)
  let ohp =
    Array.init num_joins (fun j ->
        Problem.add_var p ~name:(Printf.sprintf "ohp_j%d" j) ~kind:Problem.Binary ())
  in
  (* ohp 0: the chosen first table is stored sorted. *)
  let sorted_tio0 =
    Linexpr.of_terms
      (List.filter_map
         (fun tbl ->
           if sorted_mask land (1 lsl tbl) <> 0 then Some (enc.Encoding.tio.(0).(tbl), 1.)
           else None)
         (List.init n (fun i -> i)))
  in
  Problem.add_constr p ~name:"ohp0_def"
    (Linexpr.sub (Linexpr.var ohp.(0)) sorted_tio0)
    Problem.Eq 0.;
  (* ohp (j+1): the previous join's operator produced sorted output. *)
  for j = 1 to num_joins - 1 do
    let producers =
      Linexpr.of_terms
        (List.filteri (fun i _ -> produces_sorted (List.nth all_variants i)) (Array.to_list jos.(j - 1))
        |> List.map (fun v -> (v, 1.)))
    in
    Problem.add_constr p
      ~name:(Printf.sprintf "ohp%d_def" j)
      (Linexpr.sub (Linexpr.var ohp.(j)) producers)
      Problem.Eq 0.
  done;
  (* Applicability of presorted variants. *)
  let sorted_tii j =
    Linexpr.of_terms
      (List.filter_map
         (fun tbl ->
           if sorted_mask land (1 lsl tbl) <> 0 then Some (enc.Encoding.tii.(j).(tbl), 1.)
           else None)
         (List.init n (fun i -> i)))
  in
  for j = 0 to num_joins - 1 do
    List.iteri
      (fun i v ->
        if needs_outer_sorted v then
          Problem.add_constr p
            ~name:(Printf.sprintf "needs_outer_j%d_v%d" j i)
            (Linexpr.sub (Linexpr.var jos.(j).(i)) (Linexpr.var ohp.(j)))
            Problem.Le 0.;
        if needs_inner_sorted v then
          Problem.add_constr p
            ~name:(Printf.sprintf "needs_inner_j%d_v%d" j i)
            (Linexpr.sub (Linexpr.var jos.(j).(i)) (sorted_tii j))
            Problem.Le 0.)
      all_variants
  done;
  (* Objective: sum of actual variant costs. *)
  let obj = ref Linexpr.zero in
  Array.iter (fun row -> Array.iter (fun v -> obj := Linexpr.add_term !obj v 1.) row) ajc;
  Problem.set_objective p Problem.Minimize !obj;
  Problem.set_meta p "joinopt.ext.orders" (string_of_int nv);
  { enc; pm; sorted_mask; jos; pjc; ajc; ohp }

(* ------------------------------------------------------------------ *)
(* Exact-cost ground truth                                              *)
(* ------------------------------------------------------------------ *)

(* Cardinalities of the outer operand per join under an order, exact. *)
let exact_outer_cards t order =
  Relalg.Card.prefix_cards t.enc.Encoding.query order

let inner_card t order j = t.enc.Encoding.effective_card.(order.(j + 1))

let applicable t order sorted_before j v =
  (not (needs_outer_sorted v) || sorted_before)
  && (not (needs_inner_sorted v) || t.sorted_mask land (1 lsl order.(j + 1)) <> 0)

let true_cost t order variants =
  let cards = exact_outer_cards t order in
  let num_joins = t.enc.Encoding.num_joins in
  let total = ref 0. in
  let sorted = ref (t.sorted_mask land (1 lsl order.(0)) <> 0) in
  for j = 0 to num_joins - 1 do
    let v = variants.(j) in
    if not (applicable t order !sorted j v) then
      invalid_arg
        (Printf.sprintf "Ext_orders.true_cost: %s not applicable at join %d"
           (variant_to_string v) j);
    total :=
      !total
      +. variant_cost t.pm v ~outer_card:cards.(j) ~inner_card:(inner_card t order j);
    sorted := produces_sorted v
  done;
  !total

(* 2-state DP over the sorted flag: cheapest variant sequence, exactly. *)
let best_variants t order =
  let num_joins = t.enc.Encoding.num_joins in
  let cards = exact_outer_cards t order in
  (* best.(state) = (cost, reversed variant list) reaching a join with
     outer-sorted = state *)
  let init_sorted = t.sorted_mask land (1 lsl order.(0)) <> 0 in
  let start = if init_sorted then [ (true, (0., [])) ] else [ (false, (0., [])) ] in
  let step acc j =
    let candidates =
      List.concat_map
        (fun (sorted, (cost, rev_vs)) ->
          List.filter_map
            (fun v ->
              if applicable t order sorted j v then
                Some
                  ( produces_sorted v,
                    ( cost
                      +. variant_cost t.pm v ~outer_card:cards.(j)
                           ~inner_card:(inner_card t order j),
                      v :: rev_vs ) )
              else None)
            all_variants)
        acc
    in
    (* Keep the cheapest per resulting state. *)
    List.filter_map
      (fun state ->
        let matching = List.filter (fun (s, _) -> s = state) candidates in
        match List.sort (fun (_, (c1, _)) (_, (c2, _)) -> compare c1 c2) matching with
        | best :: _ -> Some best
        | [] -> None)
      [ true; false ]
  in
  let final = List.fold_left step start (List.init num_joins (fun j -> j)) in
  match List.sort (fun (_, (c1, _)) (_, (c2, _)) -> compare c1 c2) final with
  | (_, (cost, rev_vs)) :: _ -> (Array.of_list (List.rev rev_vs), cost)
  | [] -> assert false

(* ------------------------------------------------------------------ *)
(* Honest assignments, objectives, decoding                             *)
(* ------------------------------------------------------------------ *)

(* Approximate (staircase) operand quantities, consistent with pjc. *)
let approx_variant_cost t order v j =
  let enc = t.enc in
  let inner g = g enc.Encoding.effective_card.(order.(j + 1)) in
  let outer g =
    if j = 0 then g enc.Encoding.effective_card.(order.(0))
    else Thresholds.approx_fn enc.Encoding.ladder g (Encoding.log10_outer_card enc order j)
  in
  match v with
  | Hash -> 3. *. (outer (Cost_enc.g_pages t.pm) +. inner (Cost_enc.g_pages t.pm))
  | Sort_both_merge -> outer (Cost_enc.g_smj t.pm) +. inner (Cost_enc.g_smj t.pm)
  | Merge_outer_presorted -> outer (Cost_enc.g_pages t.pm) +. inner (Cost_enc.g_smj t.pm)
  | Merge_inner_presorted -> outer (Cost_enc.g_smj t.pm) +. inner (Cost_enc.g_pages t.pm)
  | Merge_both_presorted -> outer (Cost_enc.g_pages t.pm) +. inner (Cost_enc.g_pages t.pm)

let assignment_of t order variants =
  let enc = t.enc in
  (* assignment_of_order sizes its array from the problem, which already
     includes this extension's variables. *)
  let x = Encoding.assignment_of_order enc order in
  let sorted = ref (t.sorted_mask land (1 lsl order.(0)) <> 0) in
  for j = 0 to enc.Encoding.num_joins - 1 do
    if !sorted then x.(t.ohp.(j)) <- 1.;
    List.iteri
      (fun i v ->
        let cost = approx_variant_cost t order v j in
        x.(t.pjc.(j).(i)) <- cost;
        if v = variants.(j) then begin
          x.(t.jos.(j).(i)) <- 1.;
          x.(t.ajc.(j).(i)) <- cost
        end)
      all_variants;
    sorted := produces_sorted variants.(j)
  done;
  x

let objective_of t order variants =
  let x = assignment_of t order variants in
  Problem.eval_objective t.enc.Encoding.problem (fun v -> x.(v))

let decode t value order =
  ignore order;
  Array.init t.enc.Encoding.num_joins (fun j ->
      let best = ref 0 in
      Array.iteri (fun i v -> if value v > value t.jos.(j).(!best) then best := i) t.jos.(j);
      List.nth all_variants !best)

(* Approximate-cost variant choice for the MIP start (mirrors
   best_variants but over staircase costs, so the assignment is what the
   solver would price). *)
let best_variants_approx t order =
  let num_joins = t.enc.Encoding.num_joins in
  let init_sorted = t.sorted_mask land (1 lsl order.(0)) <> 0 in
  let start = [ (init_sorted, (0., [])) ] in
  let step acc j =
    let candidates =
      List.concat_map
        (fun (sorted, (cost, rev_vs)) ->
          List.filter_map
            (fun v ->
              if applicable t order sorted j v then
                Some (produces_sorted v, (cost +. approx_variant_cost t order v j, v :: rev_vs))
              else None)
            all_variants)
        acc
    in
    List.filter_map
      (fun state ->
        let matching = List.filter (fun (s, _) -> s = state) candidates in
        match List.sort (fun (_, (c1, _)) (_, (c2, _)) -> compare c1 c2) matching with
        | best :: _ -> Some best
        | [] -> None)
      [ true; false ]
  in
  let final = List.fold_left step start (List.init num_joins (fun j -> j)) in
  match List.sort (fun (_, (c1, _)) (_, (c2, _)) -> compare c1 c2) final with
  | (_, (_, rev_vs)) :: _ -> Array.of_list (List.rev rev_vs)
  | [] -> assert false

let optimize ?(pm = Cost_model.default_page_model) ?(config = Encoding.default_config)
    ?(solver = { Milp.Solver.default_params with Milp.Solver.cut_rounds = 0 }) ~sorted_tables q =
  let enc = Encoding.build ~config q in
  let t = install ~pm ~sorted_tables enc in
  let greedy_order = Dp_opt.Greedy.order q in
  let mip_start =
    {
      Milp.Warm_start.ws_x = assignment_of t greedy_order (best_variants_approx t greedy_order);
      ws_source = "greedy";
    }
  in
  let outcome = (Milp.Solver.solve ~params:solver ~mip_start enc.Encoding.problem).Milp.Solver.result in
  match outcome.Milp.Branch_bound.o_x with
  | Some x ->
    let order = Encoding.order_of_assignment enc (fun v -> x.(v)) in
    let variants = decode t (fun v -> x.(v)) order in
    (Some (order, variants, true_cost t order variants), outcome)
  | None -> (None, outcome)
