module Problem = Milp.Problem
module Linexpr = Milp.Linexpr
module Linearize = Milp.Linearize
module Cost_model = Relalg.Cost_model
module Catalog = Relalg.Catalog
module Plan = Relalg.Plan

(* Global column registry: (table, column position, bytes). *)
type column = { cl_table : int; cl_pos : int; cl_bytes : float }

type t = {
  enc : Encoding.t;
  pm : Cost_model.page_model;
  columns : column array;
  required : bool array;  (* required in the final result *)
  first_of_table : int array;  (* table -> global id of its first column *)
  clo : Problem.var array array;  (* [j][l], j >= 1; row 0 empty *)
  y : Problem.var array array;  (* clo * co products, same layout *)
}

let encoding t = t.enc

(* Full-width pages of a base table (used for inner operands and the
   first outer operand, which are unprojected scans). *)
let pages_full t tbl =
  let table = t.enc.Encoding.query.Relalg.Query.tables.(tbl) in
  let bytes = Catalog.row_bytes table in
  max 1. (ceil (t.enc.Encoding.effective_card.(tbl) *. bytes /. t.pm.Cost_model.page_bytes))

let build_columns q =
  let cols = ref [] in
  Array.iteri
    (fun tbl table ->
      if table.Catalog.tbl_columns = [] then
        invalid_arg
          (Printf.sprintf "Ext_projection: table %s declares no columns" table.Catalog.tbl_name);
      List.iteri
        (fun pos c -> cols := { cl_table = tbl; cl_pos = pos; cl_bytes = c.Catalog.col_bytes } :: !cols)
        table.Catalog.tbl_columns)
    q.Relalg.Query.tables;
  Array.of_list (List.rev !cols)

let build_required q columns =
  let required = Array.make (Array.length columns) false in
  if q.Relalg.Query.output_columns = [] then Array.fill required 0 (Array.length required) true
  else
    List.iter
      (fun (tbl, col) ->
        Array.iteri
          (fun l c ->
            if c.cl_table = tbl then begin
              let declared = List.nth q.Relalg.Query.tables.(tbl).Catalog.tbl_columns c.cl_pos in
              if declared.Catalog.col_name = col.Catalog.col_name then required.(l) <- true
            end)
          columns)
      q.Relalg.Query.output_columns;
  required

let install ?(pm = Cost_model.default_page_model) enc =
  let p = enc.Encoding.problem in
  let q = enc.Encoding.query in
  let jmax = enc.Encoding.num_joins - 1 in
  let columns = build_columns q in
  let nl = Array.length columns in
  let required = build_required q columns in
  let first_of_table =
    let firsts = Array.make (Relalg.Query.num_tables q) (-1) in
    Array.iteri (fun l c -> if firsts.(c.cl_table) < 0 then firsts.(c.cl_table) <- l) columns;
    firsts
  in
  let clo =
    Array.init enc.Encoding.num_joins (fun j ->
        if j = 0 then [||]
        else
          Array.init nl (fun l ->
              Problem.add_var p ~name:(Printf.sprintf "clo_l%d_j%d" l j) ~kind:Problem.Binary ()))
  in
  let co_ub = Array.fold_left ( +. ) 0. enc.Encoding.ladder.Thresholds.deltas in
  let y =
    Array.init enc.Encoding.num_joins (fun j ->
        if j = 0 then [||]
        else
          Array.init nl (fun l ->
              Linearize.product_binary_continuous p
                ~name:(Printf.sprintf "cloy_l%d_j%d" l j)
                ~binary:clo.(j).(l) ~continuous:enc.Encoding.co.(j) ~lb:0. ~ub:co_ub ()))
  in
  for j = 1 to jmax do
    Array.iteri
      (fun l c ->
        (* A column needs its table. *)
        Problem.add_constr p
          ~name:(Printf.sprintf "col_table_l%d_j%d" l j)
          (Linexpr.sub (Linexpr.var clo.(j).(l)) enc.Encoding.tio_expr.(j).(c.cl_table))
          Problem.Le 0.;
        (* No reappearance: dropped while the table was present => stays
           dropped. *)
        if j < jmax then
          Problem.add_constr p
            ~name:(Printf.sprintf "col_mono_l%d_j%d" l j)
            (Linexpr.add
               (Linexpr.sub (Linexpr.var clo.(j + 1).(l)) (Linexpr.var clo.(j).(l)))
               enc.Encoding.tio_expr.(j).(c.cl_table))
            Problem.Le 1.;
        (* Output columns survive to the final result. *)
        if j = jmax && required.(l) then
          Problem.add_constr p
            ~name:(Printf.sprintf "col_out_l%d" l)
            (Linexpr.sub enc.Encoding.tio_expr.(j).(c.cl_table) (Linexpr.var clo.(j).(l)))
            Problem.Le 0.)
      columns
  done;
  (* Predicate columns stay until the predicate is applied. *)
  Array.iteri
    (fun pi id ->
      if id >= 0 then
        List.iter
          (fun tbl ->
            let l = first_of_table.(tbl) in
            for j = 1 to jmax do
              (* clo >= tio - pao *)
              Problem.add_constr p
                ~name:(Printf.sprintf "col_pred_p%d_t%d_j%d" pi tbl j)
                (Linexpr.add
                   (Linexpr.sub enc.Encoding.tio_expr.(j).(tbl) (Linexpr.var clo.(j).(l)))
                   (Linexpr.scale (-1.) (Linexpr.var enc.Encoding.pao.(j).(pi))))
                Problem.Le 0.
            done)
          q.Relalg.Query.predicates.(id).Relalg.Predicate.pred_tables)
    enc.Encoding.pred_ids;
  (* Objective: hash cost with byte-derived outer pages. *)
  Problem.set_meta p "joinopt.ext.projection" (string_of_int nl);
  let t =
    { enc; pm; columns; required; first_of_table; clo; y }
  in
  let obj = ref Linexpr.zero in
  for j = 0 to jmax do
    let pgi =
      Linexpr.of_terms
        (Array.to_list (Array.mapi (fun tbl v -> (v, pages_full t tbl)) enc.Encoding.tii.(j)))
    in
    let pgo =
      if j = 0 then
        Linexpr.of_terms
          (Array.to_list (Array.mapi (fun tbl v -> (v, pages_full t tbl)) enc.Encoding.tio.(0)))
      else
        Linexpr.of_terms
          (Array.to_list
             (Array.mapi
                (fun l v -> (v, columns.(l).cl_bytes /. pm.Cost_model.page_bytes))
                y.(j)))
    in
    obj := Linexpr.add !obj (Linexpr.scale 3. (Linexpr.add pgo pgi))
  done;
  Problem.set_objective p Problem.Minimize !obj;
  t

(* ------------------------------------------------------------------ *)
(* Earliest-projection ground truth                                     *)
(* ------------------------------------------------------------------ *)

let kept_columns t order j =
  let enc = t.enc in
  if j < 1 || j > enc.Encoding.num_joins - 1 then invalid_arg "Ext_projection.kept_columns";
  let mask = ref 0 in
  for k = 0 to j do
    mask := !mask lor (1 lsl order.(k))
  done;
  let q = enc.Encoding.query in
  (* Encoded predicates not yet applicable keep their tables' first
     columns. *)
  let pending_first = Array.make (Relalg.Query.num_tables q) false in
  Array.iteri
    (fun pi id ->
      if id >= 0 && enc.Encoding.pred_masks.(pi) land !mask <> enc.Encoding.pred_masks.(pi) then
        List.iter
          (fun tbl -> pending_first.(tbl) <- true)
          q.Relalg.Query.predicates.(id).Relalg.Predicate.pred_tables)
    enc.Encoding.pred_ids;
  let kept = ref [] in
  Array.iteri
    (fun l c ->
      if !mask land (1 lsl c.cl_table) <> 0 then
        if t.required.(l) || (pending_first.(c.cl_table) && t.first_of_table.(c.cl_table) = l)
        then kept := (c.cl_table, c.cl_pos) :: !kept)
    t.columns;
  List.rev !kept

let true_cost t order =
  let enc = t.enc in
  let q = enc.Encoding.query in
  let cards = Relalg.Card.prefix_cards q order in
  let total = ref 0. in
  for j = 0 to enc.Encoding.num_joins - 1 do
    let pgi = pages_full t order.(j + 1) in
    let pgo =
      if j = 0 then pages_full t order.(0)
      else begin
        let bytes =
          List.fold_left
            (fun acc (tbl, pos) ->
              let col = List.nth q.Relalg.Query.tables.(tbl).Catalog.tbl_columns pos in
              acc +. col.Catalog.col_bytes)
            0. (kept_columns t order j)
        in
        max 1. (ceil (cards.(j) *. bytes /. t.pm.Cost_model.page_bytes))
      end
    in
    total := !total +. (3. *. (pgo +. pgi))
  done;
  !total

let assignment_of t order =
  let enc = t.enc in
  let x = Encoding.assignment_of_order enc order in
  for j = 1 to enc.Encoding.num_joins - 1 do
    let kept = kept_columns t order j in
    Array.iteri
      (fun l c ->
        if List.mem (c.cl_table, c.cl_pos) kept then begin
          x.(t.clo.(j).(l)) <- 1.;
          x.(t.y.(j).(l)) <- x.(enc.Encoding.co.(j))
        end)
      t.columns
  done;
  x

let objective_of t order =
  let x = assignment_of t order in
  Problem.eval_objective t.enc.Encoding.problem (fun v -> x.(v))

let optimize ?(pm = Cost_model.default_page_model) ?(config = Encoding.default_config)
    ?(solver = { Milp.Solver.default_params with Milp.Solver.cut_rounds = 0 }) q =
  let enc = Encoding.build ~config q in
  let t = install ~pm enc in
  let greedy_order = Dp_opt.Greedy.order q in
  let mip_start =
    { Milp.Warm_start.ws_x = assignment_of t greedy_order; ws_source = "greedy" }
  in
  let outcome = (Milp.Solver.solve ~params:solver ~mip_start enc.Encoding.problem).Milp.Solver.result in
  match outcome.Milp.Branch_bound.o_x with
  | Some x ->
    let order = Encoding.order_of_assignment enc (fun v -> x.(v)) in
    let n = Array.length order in
    let plan = Plan.of_order ~operators:(Array.make (n - 1) Plan.Hash_join) order in
    (Some (plan, true_cost t order), outcome)
  | None -> (None, outcome)
