(** End-to-end MILP-based join ordering: encode the query, hand the MILP
    to the solver, stream anytime progress (incumbent cost and proven
    lower bound — the paper's Cost/LB criterion, Section 7.1), and decode
    the winning assignment back into a left-deep plan. *)

(** How the branch & bound gets its initial incumbent. Every candidate —
    whatever its origin — is translated into a full MILP assignment from
    the [joinopt.*] metadata alone ({!Milp.Warm_start.assignment_of_plan})
    and re-certified against the original formulation before it is
    seeded, so a corrupt or stale candidate degrades to a cold start,
    never to a wrong answer. *)
type warm_start_policy =
  | Ws_off  (** cold start: no incumbent until the tree finds one *)
  | Ws_greedy
      (** seed the greedy heuristic's plan, so an incumbent exists from
          the first instant (mirrors warm-start use of commercial
          solvers); the default *)
  | Ws_portfolio
      (** race greedy / IKKBZ / simulated annealing on separate domains
          under a small {!Milp.Budget.sub} slice of the solve budget and
          seed the best certified finisher *)
  | Ws_plan of Relalg.Plan.t
      (** a caller-supplied plan — the multi-query service uses this to
          inject a translated plan-cache entry instead of re-running
          heuristics. A plan that fails {!Relalg.Plan.validate} is
          ignored (with a warning) and the greedy seed applies. *)

val warm_start_to_string : warm_start_policy -> string
(** ["off"], ["greedy"], ["portfolio"] or ["plan"]. *)

val warm_start_of_string : string -> (warm_start_policy, string) result
(** Parses ["off"] / ["greedy"] / ["portfolio"] (the CLI surface;
    [Ws_plan] has no textual form). *)

val max_monolithic_tables : int
(** 62 — the hard ceiling of the monolithic (bitmask-based) encoding and
    cost paths. Larger queries must go through the decomposition
    subsystem (lib/decomp); {!optimize} refuses them with a clear
    [Invalid_argument]. *)

(** When the decomposition subsystem takes over from the monolithic
    MILP. The policy lives here (plain data) so one [config] describes
    the whole pipeline; the driver that interprets it is
    [Decomp.Decompose], which sits above this library. *)
type decomp_policy =
  | Dc_off  (** never decompose; queries past the ceiling are refused *)
  | Dc_auto
      (** decompose past [dc_threshold] tables (and always past
          {!max_monolithic_tables}); smaller queries solve monolithically *)
  | Dc_force  (** decompose every query of three or more tables *)

val decomp_policy_to_string : decomp_policy -> string
val decomp_policy_of_string : string -> (decomp_policy, string) result

(** Which heuristic orders the clusters at the seam. *)
type seam_heuristic =
  | Seam_ikkbz  (** IKKBZ on the contracted cluster graph when it is a
                    tree, greedy otherwise (counted as a seam fallback) *)
  | Seam_greedy  (** greedy always *)

val seam_to_string : seam_heuristic -> string
val seam_of_string : string -> (seam_heuristic, string) result

type decomp_config = {
  dc_policy : decomp_policy;
  dc_threshold : int;  (** [Dc_auto] decomposes when tables exceed this *)
  dc_max_cluster : int;  (** largest cluster the partitioner may grow *)
  dc_seam : seam_heuristic;
}

val default_decomp : decomp_config
(** [Dc_off], threshold 30, clusters of at most 12 tables, IKKBZ seam. *)

type config = {
  encoding : Encoding.config;
  cost : Cost_enc.spec;
  pm : Relalg.Cost_model.page_model;
  solver : Milp.Solver.params;
  warm_start : warm_start_policy;
  decomp : decomp_config;
}

val default_config : config
(** Medium precision, hash joins (the paper's experimental setup), greedy
    warm start, solver defaults, decomposition off. *)

val with_decomp : decomp_config -> config -> config
(** Validates the knobs: threshold >= 2, max cluster size in
    [2, {!max_monolithic_tables}]. Raises [Invalid_argument] otherwise. *)

val should_decompose : config -> Relalg.Query.t -> bool
(** Whether this query takes the decomposition path under the config's
    policy — the single predicate the CLI, scheduler and server consult
    before choosing between {!optimize} and the decomposition driver. *)

val with_precision : Thresholds.precision -> config -> config
val with_time_limit : float -> config -> config

val with_jobs : int -> config -> config
(** Number of domains for the branch & bound (clamped to ≥ 1). The
    certified plan and objective are identical for every value — see
    {!Milp.Branch_bound.params.jobs}. *)

val with_checkpoint : Milp.Checkpoint.config -> config -> config
(** Persist the branch & bound state to the given path periodically and
    on any early stop, enabling [resume] in {!optimize}. *)

val with_lint : Milp.Lint.level -> config -> config
(** Run the static formulation auditor on the generated MILP before
    solving; the report lands in {!result.lint}. Enforcement is the
    caller's job: check {!Milp.Lint.failed} against the level. *)

val with_warm_start : Relalg.Plan.t option -> config -> config
(** [Some p] sets [Ws_plan p]; [None] restores the default [Ws_greedy].
    Kept for callers (the service scheduler) that think in terms of an
    optional cached plan. *)

val with_warm_start_policy : warm_start_policy -> config -> config

type trace_point = {
  tp_elapsed : float;
  tp_objective : float option;  (** incumbent MILP objective (approx. cost) *)
  tp_bound : float;  (** proven lower bound on the MILP objective *)
  tp_factor : float option;
  (** objective / bound — the guaranteed optimality factor the paper
      plots; [None] before the first incumbent *)
}

type provenance =
  [ `Milp_certified  (** MILP solution, independently certified *)
  | `Milp_uncertified  (** MILP solution that failed the certification audit *)
  | `Recovered of int  (** produced by recovery-ladder rung [n] after a numeric failure *)
  | `Fallback_dp  (** Selinger dynamic programming (exact, small queries) *)
  | `Fallback_heuristic  (** IKKBZ or greedy, when everything else failed *) ]
(** Where the returned plan came from. The optimizer never returns
    [plan = None] for a well-formed query: when the MILP path fails —
    numerically, by timeout, or because decoding broke — a classical
    planner supplies the plan and [provenance] says so. *)

val provenance_to_string : provenance -> string

type result = {
  plan : Relalg.Plan.t option;
  provenance : provenance option;  (** [None] only when [plan] is [None] *)
  certificate : Milp.Solver.certificate;  (** the solver's audit verdict *)
  true_cost : float option;  (** decoded plan's cost under the exact model *)
  objective : float option;  (** its MILP objective *)
  bound : float;
  status : Milp.Branch_bound.status;
  stopped : Milp.Branch_bound.stop_reason;
  (** why the solve ended: ran to completion, hit the time or node
      limit, or was cooperatively interrupted (SIGINT / cancel) — in the
      last three cases the plan is still the best *certified* incumbent *)
  resumed : bool;  (** the solve continued from an on-disk checkpoint *)
  trace : trace_point list;  (** chronological *)
  nodes : int;
  num_vars : int;
  num_constrs : int;
  elapsed : float;
  lint : Milp.Lint.report option;
      (** static audit of the generated formulation; [Some] iff the
          config enables {!with_lint} *)
  seed : Milp.Warm_start.seed option;
      (** provenance of the seeded initial incumbent: [None] on a cold
          start or when every candidate was rejected at certification;
          carried through checkpoint/resume *)
}

val guaranteed_factor : objective:float -> bound:float -> float
(** [objective / max bound eps]; [infinity] when the bound is not yet
    positive. *)

val optimize :
  ?config:config ->
  ?budget:Milp.Budget.t ->
  ?resume:bool ->
  ?on_progress:(trace_point -> unit) ->
  Relalg.Query.t ->
  result
(** [budget] shares a deadline and cancellation token with the caller —
    wrap the call in {!Milp.Budget.with_sigint} to turn Ctrl-C into a
    graceful stop; when absent a budget is created from the configured
    time limit. [resume] (default [false]) continues from the configured
    checkpoint when one is present and loadable — see
    {!Milp.Solver.solve}. After a cancellation the exact-DP fallback is
    skipped so the call returns promptly with a heuristic plan if the
    MILP produced none. Raises [Invalid_argument] for queries past
    {!max_monolithic_tables} — those must go through decomposition. *)

val exact_metric : Cost_enc.spec -> Relalg.Cost_model.metric
(** The exact cost metric a spec's plans should be judged by. *)
