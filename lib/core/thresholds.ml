type precision = Low | Medium | High | Custom of float

let tolerance = function
  | Low -> 100.
  | Medium -> 10.
  | High -> 3.
  | Custom f ->
    if f <= 1. then invalid_arg "Thresholds.tolerance: factor must be > 1";
    f

let precision_to_string = function
  | Low -> "low"
  | Medium -> "medium"
  | High -> "high"
  | Custom f -> Printf.sprintf "custom(%g)" f

type rounding = Floor_steps | Ceil_steps | Central

type t = {
  thetas : float array;
  log10_thetas : float array;
  deltas : float array;
  max_log10 : float;
  rounding : rounding;
  step_factor : float;  (* staircase value at level r is step_factor * theta_r *)
}

let rounding_factor tol = function
  | Floor_steps -> 1.
  | Ceil_steps -> tol
  | Central -> sqrt tol

let make ?(rounding = Central) ?(min_card = 1.) ~max_card precision =
  let tol = tolerance precision in
  if min_card < 1. then invalid_arg "Thresholds.make: min_card must be >= 1";
  if max_card < min_card then invalid_arg "Thresholds.make: max_card < min_card";
  let count = max 1 (int_of_float (ceil (log (max_card /. min_card) /. log tol))) in
  let thetas = Array.init count (fun r -> min_card *. (tol ** float_of_int (r + 1))) in
  let log10_thetas = Array.map log10 thetas in
  let step_factor = rounding_factor tol rounding in
  (* Staircase value at level r is [step_factor * theta_r]; deltas
     telescope so that summing the reached levels reproduces it. *)
  let deltas =
    Array.init count (fun r ->
        if r = 0 then step_factor *. thetas.(0)
        else step_factor *. (thetas.(r) -. thetas.(r - 1)))
  in
  { thetas; log10_thetas; deltas; max_log10 = log10 (max_card *. tol); rounding; step_factor }

let num_thresholds l = Array.length l.thetas

let reached l log10_card = Array.map (fun lt -> log10_card >= lt -. 1e-12) l.log10_thetas

let approx_card l log10_card =
  let acc = ref 0. in
  Array.iteri (fun r hit -> if hit then acc := !acc +. l.deltas.(r)) (reached l log10_card);
  !acc

let approx_fn l g log10_card =
  let hits = reached l log10_card in
  let acc = ref 0. in
  Array.iteri
    (fun r hit ->
      if hit then begin
        let v = g (l.step_factor *. l.thetas.(r)) in
        let prev = if r = 0 then 0. else g (l.step_factor *. l.thetas.(r - 1)) in
        acc := !acc +. (v -. prev)
      end)
    hits;
  !acc

let levels l g =
  if Float.compare (g 0.) 0. <> 0 then invalid_arg "Thresholds.levels: g must satisfy g(0) = 0";
  Array.init (num_thresholds l) (fun r ->
      let v = g (l.step_factor *. l.thetas.(r)) in
      let prev = if r = 0 then 0. else g (l.step_factor *. l.thetas.(r - 1)) in
      v -. prev)
