type operator_choice = Fixed of Relalg.Plan.operator | Best_per_join

type result = { plan : Relalg.Plan.t; cost : float; subsets_explored : int; elapsed : float }

type outcome =
  | Complete of result
  | Timed_out of { elapsed : float; subsets_explored : int }

exception Out_of_time of int

let max_tables_for_memory = 24

let op_candidates = function
  | Fixed op -> [ op ]
  | Best_per_join -> [ Relalg.Plan.Hash_join; Relalg.Plan.Sort_merge_join; Relalg.Plan.Block_nested_loop ]

let op_index = function
  | Relalg.Plan.Hash_join -> 0
  | Relalg.Plan.Sort_merge_join -> 1
  | Relalg.Plan.Block_nested_loop -> 2

let op_of_index = function
  | 0 -> Relalg.Plan.Hash_join
  | 1 -> Relalg.Plan.Sort_merge_join
  | 2 -> Relalg.Plan.Block_nested_loop
  | _ -> invalid_arg "Selinger.op_of_index"

let optimize ?(metric = Relalg.Cost_model.Operator_costs) ?(pm = Relalg.Cost_model.default_page_model)
    ?(operators = Fixed Relalg.Plan.Hash_join) ?time_limit q =
  let n = Relalg.Query.num_tables q in
  let budget = Milp.Budget.create ?limit:time_limit () in
  if n > max_tables_for_memory then
    (* Refused before any work: an explored count of 0 is the truth here,
       unlike the deadline path below which reports the real count. *)
    Timed_out { elapsed = Milp.Budget.elapsed budget; subsets_explored = 0 }
  else begin
    let e = Relalg.Card.estimator q in
    let total = 1 lsl n in
    let best = Array.make total infinity in
    let choice = Array.make total (-1) in
    (* Per-subset caches: estimated cardinality (all applicable predicates
       applied) and the applicable-predicate mask. *)
    let cards = Array.make total 1. in
    let app = Array.make total 0 in
    let eval_costs = Array.map (fun p -> p.Relalg.Predicate.eval_cost) q.Relalg.Query.predicates in
    (* Unary predicates are evaluated at scan time (see Cost_model), never
       charged at a join. *)
    let um =
      let acc = ref 0 in
      Array.iteri
        (fun pi p ->
          if List.length p.Relalg.Predicate.pred_tables = 1 then acc := !acc lor (1 lsl pi))
        q.Relalg.Query.predicates;
      !acc
    in
    let scan_charge t =
      Array.fold_left
        (fun acc p ->
          match p.Relalg.Predicate.pred_tables with
          | [ t' ] when t' = t && p.Relalg.Predicate.eval_cost > 0. ->
            acc +. (p.Relalg.Predicate.eval_cost *. q.Relalg.Query.tables.(t).Relalg.Catalog.tbl_card)
          | _ -> acc)
        0. q.Relalg.Query.predicates
    in
    let fresh_eval_cost s s' =
      (* Sum of eval costs of non-unary predicates newly applicable in s'. *)
      let fresh = app.(s') land lnot app.(s) land lnot um in
      if fresh = 0 then 0.
      else begin
        let acc = ref 0. in
        Array.iteri
          (fun pi c -> if c > 0. && fresh land (1 lsl pi) <> 0 then acc := !acc +. c)
          eval_costs;
        !acc
      end
    in
    let subsets = Bitset.subsets_by_cardinality n in
    let explored = ref 0 in
    (* Deadline checks run on their own counter, not on [explored]: the
       check fires on the very first iteration and then every 256th call
       no matter how the explored count moves, so the check can never be
       starved, and the exception always carries the true count of
       subsets actually processed. *)
    let checks = ref 0 in
    let check_time =
      match time_limit with
      | None -> fun () -> ()
      | Some _ ->
        fun () ->
          if !checks land 255 = 0 && Milp.Budget.exhausted budget then
            raise (Out_of_time !explored);
          incr checks
    in
    match
      Array.iter
        (fun s ->
          check_time ();
          incr explored;
          let k = Bitset.cardinal s in
          if k >= 1 then begin
            app.(s) <- Relalg.Card.applicable_preds e s;
            if k = 1 then begin
              (match Bitset.members s with
              | [ t ] ->
                (* Scan-filtered by unary predicates, charged here. *)
                cards.(s) <- Relalg.Card.subset_card e s;
                best.(s) <- scan_charge t
              | _ -> assert false)
            end
            else begin
              (* Fill cardinality once per subset using any member. *)
              (match Bitset.members s with
              | t :: _ ->
                let sub = Bitset.remove s t in
                cards.(s) <- Relalg.Card.extend_card e ~mask:sub ~card:cards.(sub) ~table:t
              | [] -> assert false);
              Bitset.iter_members
                (fun t ->
                  let sub = Bitset.remove s t in
                  if best.(sub) < infinity then begin
                    let inner_card = cards.(1 lsl t) in
                    let tuples_tested = cards.(sub) *. inner_card in
                    (* The inner table's scan-time unary charge enters the
                       plan when the table does. *)
                    let eval_charge = (fresh_eval_cost sub s *. tuples_tested) +. scan_charge t in
                    let consider op =
                      let step =
                        match metric with
                        | Relalg.Cost_model.Cout -> cards.(s)
                        | Relalg.Cost_model.Operator_costs ->
                          Relalg.Cost_model.join_cost op pm ~outer_card:cards.(sub) ~inner_card
                      in
                      let cost = best.(sub) +. step +. eval_charge in
                      if cost < best.(s) then begin
                        best.(s) <- cost;
                        choice.(s) <- t lor (op_index op lsl 6)
                      end
                    in
                    List.iter consider (op_candidates operators)
                  end)
                s
            end
          end)
        subsets
    with
    | exception Out_of_time subsets_explored ->
      Timed_out { elapsed = Milp.Budget.elapsed budget; subsets_explored }
    | () ->
      let full = total - 1 in
      assert (best.(full) < infinity);
      (* Reconstruct order and operators by unwinding the choices. *)
      let order = Array.make n 0 and ops = Array.make (max 0 (n - 1)) Relalg.Plan.Hash_join in
      let rec unwind s k =
        if k = 0 then
          match Bitset.members s with
          | [ t ] -> order.(0) <- t
          | _ -> assert false
        else begin
          let c = choice.(s) in
          let t = c land 63 and op = op_of_index (c lsr 6) in
          order.(k) <- t;
          ops.(k - 1) <- op;
          unwind (Bitset.remove s t) (k - 1)
        end
      in
      unwind full (n - 1);
      let plan = Relalg.Plan.of_order ~operators:ops order in
      Complete
        {
          plan;
          cost = best.(full);
          subsets_explored = !explored;
          elapsed = Milp.Budget.elapsed budget;
        }
  end
