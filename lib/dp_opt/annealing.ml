module Plan = Relalg.Plan
module Cost_model = Relalg.Cost_model
module Query = Relalg.Query

type result = { plan : Plan.t; cost : float; moves_tried : int; restarts : int }

let cost_of metric pm q order = Cost_model.plan_cost ~metric ~pm q (Plan.of_order order)

let random_order st n =
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  order

(* Neighbourhood: swap two random positions, or remove a table and
   re-insert it elsewhere (Steinbrunn's swap and 3-cycle flavours). The
   move is applied in place and an undo closure is returned. *)
let random_move st order =
  let n = Array.length order in
  let swap i j =
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  in
  let distinct_pair () =
    let i = Random.State.int st n in
    let j = ref (Random.State.int st n) in
    while n > 1 && !j = i do
      j := Random.State.int st n
    done;
    (i, !j)
  in
  if Random.State.bool st then begin
    let i, j = distinct_pair () in
    swap i j;
    fun () -> swap i j
  end
  else begin
    (* Rotate the segment [i..j] left by one (re-insertion). *)
    let i, j = distinct_pair () in
    let i, j = (min i j, max i j) in
    let first = order.(i) in
    for k = i to j - 1 do
      order.(k) <- order.(k + 1)
    done;
    order.(j) <- first;
    fun () ->
      let last = order.(j) in
      for k = j downto i + 1 do
        order.(k) <- order.(k - 1)
      done;
      order.(i) <- last
  end

let iterative_improvement ?(metric = Cost_model.Operator_costs)
    ?(pm = Cost_model.default_page_model) ?cost ?(seed = 0) ?(restarts = 10)
    ?time_limit q =
  let n = Query.num_tables q in
  let cost_fn = match cost with Some f -> f | None -> cost_of metric pm q in
  let st = Random.State.make [| seed; 17 |] in
  let budget = Milp.Budget.create ?limit:time_limit () in
  let out_of_time () = Milp.Budget.exhausted budget in
  let moves = ref 0 in
  let stall_limit = max 20 (3 * n * n) in
  let best_order = ref (random_order st n) in
  let best_cost = ref (cost_fn !best_order) in
  let descents = ref 0 in
  (try
     for _ = 1 to restarts do
       incr descents;
       let order = random_order st n in
       let cost = ref (cost_fn order) in
       let stall = ref 0 in
       while !stall < stall_limit do
         if out_of_time () then raise Exit;
         incr moves;
         let undo = random_move st order in
         let c = cost_fn order in
         if c < !cost -. 1e-12 then begin
           cost := c;
           stall := 0
         end
         else begin
           undo ();
           incr stall
         end
       done;
       if !cost < !best_cost then begin
         best_cost := !cost;
         best_order := Array.copy order
       end
     done
   with Exit -> ());
  {
    plan = Plan.of_order !best_order;
    cost = !best_cost;
    moves_tried = !moves;
    restarts = !descents;
  }

let simulated_annealing ?(metric = Cost_model.Operator_costs)
    ?(pm = Cost_model.default_page_model) ?cost ?(seed = 0) ?initial_temperature
    ?(cooling = 0.9) ?moves_per_temperature ?time_limit q =
  let n = Query.num_tables q in
  let cost_fn = match cost with Some f -> f | None -> cost_of metric pm q in
  let st = Random.State.make [| seed; 43 |] in
  let budget = Milp.Budget.create ?limit:time_limit () in
  let out_of_time () = Milp.Budget.exhausted budget in
  let order = random_order st n in
  let cost = ref (cost_fn order) in
  let best_order = ref (Array.copy order) in
  let best_cost = ref !cost in
  let temperature = ref (match initial_temperature with Some t -> t | None -> max 1. !cost) in
  let per_level = match moves_per_temperature with Some m -> m | None -> max 16 (4 * n * n) in
  let moves = ref 0 in
  let frozen = ref 0 in
  (* Zero-cost-delta moves are always "accepted", so freezing on the raw
     acceptance count alone can spin forever; a hard level cap bounds the
     schedule regardless. *)
  let levels = ref 0 in
  let max_levels = 400 in
  (try
     while !frozen < 3 && !levels < max_levels do
       incr levels;
       let accepted = ref 0 in
       for _ = 1 to per_level do
         if out_of_time () then raise Exit;
         incr moves;
         let undo = random_move st order in
         let c = cost_fn order in
         let delta = c -. !cost in
         let accept =
           delta < 0.
           || Random.State.float st 1. < exp (-.delta /. max 1e-9 !temperature)
         in
         if accept then begin
           cost := c;
           if Float.compare delta 0. <> 0 then incr accepted;
           if c < !best_cost then begin
             best_cost := c;
             best_order := Array.copy order
           end
         end
         else undo ()
       done;
       if !accepted = 0 then incr frozen else frozen := 0;
       temperature := !temperature *. cooling
     done
   with Exit -> ());
  {
    plan = Plan.of_order !best_order;
    cost = !best_cost;
    moves_tried = !moves;
    restarts = 1;
  }
