(** Randomized join-ordering heuristics from Steinbrunn et al. (VLDBJ'97):
    iterative improvement and simulated annealing over left-deep orders.

    The paper's evaluation deliberately excludes this class (Section 7.1):
    such algorithms produce plans of improving quality but can never bound
    their distance from the optimum, which is exactly the property the
    MILP approach adds. They are provided as baselines so that trade-off
    can be demonstrated. Deterministic for a given [seed]. *)

type result = {
  plan : Relalg.Plan.t;
  cost : float;
  moves_tried : int;
  restarts : int;  (** for iterative improvement: descents performed *)
}

val iterative_improvement :
  ?metric:Relalg.Cost_model.metric ->
  ?pm:Relalg.Cost_model.page_model ->
  ?cost:(int array -> float) ->
  ?seed:int ->
  ?restarts:int ->
  ?time_limit:float ->
  Relalg.Query.t ->
  result
(** Random-restart local search: from a random order, apply improving
    random swap/insertion moves until a local minimum (no improvement in
    [3 n^2] consecutive tries), then restart. Defaults: hash-join costs,
    seed 0, 10 restarts, no time limit. [cost] overrides the objective
    entirely (then [metric]/[pm] are unused) — the decomposition
    baseline passes a mask-free evaluator here so the search runs on
    100+-table orders the bitmask cost model cannot represent; the
    result's [cost] field is whatever the override returned. *)

val simulated_annealing :
  ?metric:Relalg.Cost_model.metric ->
  ?pm:Relalg.Cost_model.page_model ->
  ?cost:(int array -> float) ->
  ?seed:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?moves_per_temperature:int ->
  ?time_limit:float ->
  Relalg.Query.t ->
  result
(** Classic annealing: accept worsening moves with probability
    [exp (-delta / T)], geometric cooling. The initial temperature
    defaults to the starting plan's cost (accept almost anything at
    first); [cooling] defaults to 0.9, [moves_per_temperature] to
    [4 n^2]; stops frozen (acceptance ratio ~ 0) or at the time limit.
    [cost] overrides the objective as in {!iterative_improvement}. *)
