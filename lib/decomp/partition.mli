(** Join-graph clustering: splits a wide query into clusters the
    monolithic MILP pipeline can solve.

    Kruskal-style agglomeration over the join graph, most selective
    edges first (edge weight = product of the selectivities of every
    predicate covering the table pair). A merge is accepted only while
    the merged cluster stays monolithically solvable: at most
    [max_cluster] tables and at most 62 intra predicates plus intra
    correlations (the [Card.estimator] ceiling counts virtual
    correlation predicates too — in dense fragments the predicate bound
    binds before the table bound). Deterministic: ties break on table
    indices, clusters are listed by smallest member and each cluster's
    tables ascend. *)

type cluster = {
  cl_tables : int array;  (** member table indices in the original query, ascending *)
  cl_query : Relalg.Query.t;
      (** the cluster as a standalone query: its tables (local index [i]
          is global [cl_tables.(i)]) plus every predicate and correlation
          fully contained in the cluster, reindexed. Cross-cluster
          predicates belong to the seam layer. Output columns are not
          carried over. *)
}

type t = {
  clusters : cluster array;  (** ordered by smallest member table index *)
  table_cluster : int array;  (** global table index -> cluster index *)
}

val partition : max_cluster:int -> Relalg.Query.t -> t
(** Raises [Invalid_argument] when [max_cluster < 1]. Singleton clusters
    are normal (a hub table of a star query often ends up alone once its
    neighbours' clusters fill up). *)
