(* Seam layer: orders the clusters of a partitioned query.

   Cross-cluster predicates are grouped by the set of clusters they
   span; each group contributes one virtual join predicate whose
   selectivity is the product of its members'. When the contracted
   cluster graph fits the monolithic machinery (at most 62 clusters and
   62 seam groups) it is solved as an ordinary small query — each
   cluster becomes a pseudo-table whose cardinality is the cluster's
   estimated result size — by IKKBZ (exact on tree-shaped contracted
   graphs under C_out) or the greedy heuristic. Past those ceilings a
   mask-free greedy sweep orders the clusters directly.

   Cross-cluster *correlations* (groups whose member predicates span
   several clusters) are dropped from the contracted estimate: the seam
   is a heuristic layer and the corrections would need partial-group
   bookkeeping the pseudo-table model cannot express. The stitched
   plan's reported true cost (Wide_cost over the original query) still
   includes them. *)

module Q = Relalg.Query
module P = Relalg.Predicate
module C = Relalg.Catalog
module Optimizer = Joinopt.Optimizer

type result = {
  sm_order : int array;
  sm_heuristic : string;
  sm_fallback : bool;
}

(* Cross-cluster predicate groups: (sorted distinct cluster indices,
   product of member selectivities), deterministically ordered by the
   cluster-index key. *)
let seam_groups q (pt : Partition.t) =
  let tbl = Hashtbl.create 32 in
  let keys = ref [] in
  Array.iter
    (fun p ->
      let cls =
        List.sort_uniq compare
          (List.map (fun t -> pt.Partition.table_cluster.(t)) p.P.pred_tables)
      in
      match cls with
      | [] | [ _ ] -> ()  (* intra-cluster: already inside a sub-query *)
      | _ ->
        let w = try Hashtbl.find tbl cls with Not_found -> (keys := cls :: !keys; 1.) in
        Hashtbl.replace tbl cls (w *. p.P.selectivity))
    q.Q.predicates;
  List.sort compare !keys
  |> List.map (fun k -> (k, Hashtbl.find tbl k))

let cluster_cards (pt : Partition.t) =
  Array.map
    (fun c -> max 1. (Wide_cost.result_card c.Partition.cl_query))
    pt.Partition.clusters

(* Greedy sweep with no bitmask ceiling: start from the smallest
   cluster, repeatedly append the cluster minimizing the estimated
   intermediate size (current card x cluster card x selectivities of
   seam groups completed by the addition). Ties break on the smaller
   cluster index because candidates are scanned in ascending order and
   only a strictly smaller estimate displaces the incumbent. *)
let wide_greedy ~ccards ~groups =
  let nc = Array.length ccards in
  let groups =
    List.map (fun (cls, sel) -> (Array.of_list cls, sel)) groups
  in
  let chosen = Array.make nc false in
  let order = Array.make nc 0 in
  let start = ref 0 in
  for c = 1 to nc - 1 do
    if Float.compare ccards.(c) ccards.(!start) < 0 then start := c
  done;
  order.(0) <- !start;
  chosen.(!start) <- true;
  let cur_card = ref ccards.(!start) in
  let new_sels c =
    (* selectivity of seam groups fully covered once [c] joins *)
    List.fold_left
      (fun acc (cls, sel) ->
        if
          Array.exists (fun x -> x = c) cls
          && Array.for_all (fun x -> x = c || chosen.(x)) cls
        then acc *. sel
        else acc)
      1. groups
  in
  for k = 1 to nc - 1 do
    let best = ref (-1) in
    let best_card = ref infinity in
    for c = 0 to nc - 1 do
      if not chosen.(c) then begin
        let cand = !cur_card *. ccards.(c) *. new_sels c in
        if !best < 0 || Float.compare cand !best_card < 0 then begin
          best := c;
          best_card := cand
        end
      end
    done;
    order.(k) <- !best;
    chosen.(!best) <- true;
    cur_card := !best_card
  done;
  order

(* Ceiling of the contracted pseudo-query: the monolithic estimator
   handles at most 62 tables and 62 predicates. *)
let max_contracted = 62

let order ~seam q (pt : Partition.t) =
  let nc = Array.length pt.Partition.clusters in
  if nc = 1 then { sm_order = [| 0 |]; sm_heuristic = "trivial"; sm_fallback = false }
  else begin
    let ccards = cluster_cards pt in
    let groups = seam_groups q pt in
    if nc <= max_contracted && List.length groups <= max_contracted then begin
      let tables =
        Array.to_list
          (Array.mapi
             (fun i card -> C.table (Printf.sprintf "C%d" i) card)
             ccards)
      in
      let predicates = List.map (fun (cls, sel) -> P.nary cls sel) groups in
      let cq = Q.create ~predicates tables in
      match seam with
      | Optimizer.Seam_greedy ->
        { sm_order = Dp_opt.Greedy.order cq; sm_heuristic = "greedy"; sm_fallback = false }
      | Optimizer.Seam_ikkbz -> (
        match Dp_opt.Ikkbz.order cq with
        | Ok o -> { sm_order = o; sm_heuristic = "ikkbz"; sm_fallback = false }
        | Error Dp_opt.Ikkbz.Not_a_tree ->
          (* IKKBZ needs a tree-shaped (contracted) join graph; cyclic
             seams fall back to greedy and the stitch reports it. *)
          {
            sm_order = Dp_opt.Greedy.order cq;
            sm_heuristic = "greedy";
            sm_fallback = true;
          })
    end
    else
      (* Too many clusters or seam groups for the contracted encoding:
         order clusters with the mask-free sweep. Counted as a fallback
         whenever the requested heuristic could not run. *)
      {
        sm_order = wide_greedy ~ccards ~groups;
        sm_heuristic = "wide-greedy";
        sm_fallback = (match seam with Optimizer.Seam_ikkbz -> true | Optimizer.Seam_greedy -> false);
      }
  end
