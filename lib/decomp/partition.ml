(* Join-graph clustering for the decomposition pipeline.

   Kruskal-style agglomeration over the join graph: every table starts
   as its own cluster and edges are processed from most to least
   selective (joins that shrink their operands the most are the ones
   worth ordering exactly, so they belong inside a cluster where the
   MILP sees them). A merge is accepted only while the merged cluster
   stays solvable by the monolithic pipeline: at most [max_cluster]
   tables AND at most 62 intra predicates plus intra correlations — the
   [Card.estimator] ceiling counts virtual correlation predicates too,
   so a 12-table clique fragment with 66 binary predicates must be
   rejected on predicate count even though its table count fits.

   Everything is deterministic: edges sort by (weight, endpoints), the
   resulting clusters are listed by smallest member table and each
   cluster's tables ascend. *)

module Q = Relalg.Query
module P = Relalg.Predicate

type cluster = {
  cl_tables : int array;
  cl_query : Q.t;
}

type t = {
  clusters : cluster array;
  table_cluster : int array;
}

(* The monolithic estimator's ceiling on real + virtual predicates. *)
let max_sub_predicates = 62

(* Sub-query over [tables] (ascending global indices): the cluster's
   tables plus every predicate and correlation fully contained in it,
   reindexed. Ascending-to-ascending table remapping and in-order
   predicate selection keep [pred_tables] and [corr_members] sorted, as
   [Query.create] requires. Output columns are dropped — they reference
   global table indices and play no role in the basic cost model. *)
let subquery q tables =
  let local = Hashtbl.create 16 in
  Array.iteri (fun i t -> Hashtbl.replace local t i) tables;
  let in_cluster t = Hashtbl.mem local t in
  let keep = ref [] in
  let pred_local = Hashtbl.create 16 in
  let k = ref 0 in
  Array.iteri
    (fun pi p ->
      if List.for_all in_cluster p.P.pred_tables then begin
        Hashtbl.replace pred_local pi !k;
        incr k;
        keep :=
          { p with P.pred_tables = List.map (Hashtbl.find local) p.P.pred_tables }
          :: !keep
      end)
    q.Q.predicates;
  let preds = List.rev !keep in
  let corrs =
    Array.to_list q.Q.correlations
    |> List.filter_map (fun c ->
           if List.for_all (Hashtbl.mem pred_local) c.P.corr_members then
             Some
               {
                 c with
                 P.corr_members = List.map (Hashtbl.find pred_local) c.P.corr_members;
               }
           else None)
  in
  Q.create ~predicates:preds ~correlations:corrs
    (Array.to_list (Array.map (fun t -> q.Q.tables.(t)) tables))

let partition ~max_cluster q =
  if max_cluster < 1 then
    invalid_arg "Partition.partition: max_cluster must be >= 1";
  let n = Q.num_tables q in
  let npred = Array.length q.Q.predicates in
  let ncorr = Array.length q.Q.correlations in
  let preds_of = Array.make n [] in
  Array.iteri
    (fun pi p ->
      List.iter (fun t -> preds_of.(t) <- pi :: preds_of.(t)) p.P.pred_tables)
    q.Q.predicates;
  let corrs_of_pred = Array.make (max 1 npred) [] in
  Array.iteri
    (fun ci c ->
      List.iter
        (fun pi -> corrs_of_pred.(pi) <- ci :: corrs_of_pred.(pi))
        c.P.corr_members)
    q.Q.correlations;
  (* Union-find with member lists at the roots. *)
  let parent = Array.init n (fun i -> i) in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let members = Array.init n (fun i -> [ i ]) in
  let size = Array.make n 1 in
  (* One edge per table pair that shares a predicate; weight = product of
     the selectivities of every predicate covering the pair. *)
  let edge_tbl = Hashtbl.create (4 * n) in
  Array.iter
    (fun p ->
      let ts = p.P.pred_tables in
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if j > i then begin
                let w =
                  try Hashtbl.find edge_tbl (a, b) with Not_found -> 1.
                in
                Hashtbl.replace edge_tbl (a, b) (w *. p.P.selectivity)
              end)
            ts)
        ts)
    q.Q.predicates;
  let edges = Hashtbl.fold (fun (a, b) w acc -> (w, a, b) :: acc) edge_tbl [] in
  let edges =
    List.sort
      (fun (w1, a1, b1) (w2, a2, b2) ->
        let c = Float.compare w1 w2 in
        if c <> 0 then c
        else
          let c = compare a1 a2 in
          if c <> 0 then c else compare b1 b2)
      edges
  in
  (* Epoch-stamped scratch: one pass over the predicates incident to a
     candidate union counts its intra predicates and correlations
     without allocating per attempt. *)
  let epoch = ref 0 in
  let tbl_epoch = Array.make n 0 in
  let pred_seen = Array.make (max 1 npred) 0 in
  let pred_intra = Array.make (max 1 npred) 0 in
  let corr_seen = Array.make (max 1 ncorr) 0 in
  let try_merge a b =
    let ra = find a and rb = find b in
    if ra <> rb && size.(ra) + size.(rb) <= max_cluster then begin
      incr epoch;
      let e = !epoch in
      let union = List.rev_append members.(ra) members.(rb) in
      List.iter (fun t -> tbl_epoch.(t) <- e) union;
      let nintra = ref 0 in
      let cand_corrs = ref [] in
      List.iter
        (fun t ->
          List.iter
            (fun pi ->
              if pred_seen.(pi) <> e then begin
                pred_seen.(pi) <- e;
                if
                  List.for_all
                    (fun u -> tbl_epoch.(u) = e)
                    q.Q.predicates.(pi).P.pred_tables
                then begin
                  pred_intra.(pi) <- e;
                  incr nintra;
                  List.iter
                    (fun ci ->
                      if corr_seen.(ci) <> e then begin
                        corr_seen.(ci) <- e;
                        cand_corrs := ci :: !cand_corrs
                      end)
                    corrs_of_pred.(pi)
                end
              end)
            preds_of.(t))
        union;
      List.iter
        (fun ci ->
          if
            List.for_all
              (fun pi -> pred_intra.(pi) = e)
              q.Q.correlations.(ci).P.corr_members
          then incr nintra)
        !cand_corrs;
      if !nintra <= max_sub_predicates then begin
        let big, small = if size.(ra) >= size.(rb) then (ra, rb) else (rb, ra) in
        parent.(small) <- big;
        members.(big) <- List.rev_append members.(small) members.(big);
        members.(small) <- [];
        size.(big) <- size.(big) + size.(small)
      end
    end
  in
  List.iter (fun (_, a, b) -> try_merge a b) edges;
  let buckets = Hashtbl.create n in
  for t = 0 to n - 1 do
    let r = find t in
    let l = try Hashtbl.find buckets r with Not_found -> [] in
    Hashtbl.replace buckets r (t :: l)
  done;
  let groups = Hashtbl.fold (fun _ ts acc -> List.sort compare ts :: acc) buckets [] in
  let groups =
    List.sort (fun g1 g2 -> compare (List.hd g1) (List.hd g2)) groups
  in
  let clusters =
    Array.of_list
      (List.map
         (fun ts ->
           let tables = Array.of_list ts in
           { cl_tables = tables; cl_query = subquery q tables })
         groups)
  in
  let table_cluster = Array.make n (-1) in
  Array.iteri
    (fun ci c -> Array.iter (fun t -> table_cluster.(t) <- ci) c.cl_tables)
    clusters;
  { clusters; table_cluster }
