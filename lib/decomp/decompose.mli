(** The decomposition driver: partitioned MILP for queries past the
    monolithic 62-table ceiling (and for any query the config forces
    down this path).

    Pipeline: {!Partition} clusters the join graph; each multi-table
    cluster is solved by the ordinary certified pipeline
    ({!Joinopt.Optimizer.optimize}) under a {!Milp.Budget.sub} slice of
    the caller's budget — clusters dispatched across
    {!Milp.Work_pool} worker domains when [jobs > 1]; {!Seam} orders the
    clusters; the cluster-internal orders are concatenated into one
    global left-deep plan whose operators and true cost come from the
    mask-free model ({!Wide_cost}).

    A cluster solve that dies (exception, or the
    {!Milp.Faults.cluster_fails} chaos hook) degrades to the greedy
    heuristic for that cluster only — flagged in its report and in
    [d_degraded] — so the query always gets a plan. *)

type cluster_report = {
  cr_tables : int array;  (** global table indices, ascending *)
  cr_order : int array;  (** cluster-internal join order, global indices *)
  cr_provenance : string;
      (** {!Joinopt.Optimizer.provenance_to_string} of the cluster solve,
          or ["trivial"] (single table), ["injected-failure:greedy"] /
          ["solver-failure:greedy"] for degraded clusters *)
  cr_objective : float option;  (** cluster MILP objective, when solved *)
  cr_bound : float;  (** proven lower bound of the cluster solve *)
  cr_certified : bool;  (** the cluster incumbent passed certification *)
  cr_degraded : bool;  (** the MILP solve died; greedy supplied the order *)
  cr_seed : string option;  (** warm-start seed source, when one was used *)
  cr_stopped : string;
      (** ["completed"] / ["time-limit"] / ["node-limit"] /
          ["interrupted"] / ["failed"] *)
  cr_elapsed : float;
}

type result = {
  d_plan : Relalg.Plan.t;  (** the stitched global plan *)
  d_true_cost : float;  (** its exact-model cost ({!Wide_cost.plan_cost}) *)
  d_clusters : cluster_report array;  (** per-cluster provenance *)
  d_num_clusters : int;
  d_seam : string;  (** seam heuristic that actually ran *)
  d_seam_fallback : bool;  (** the requested seam heuristic could not run *)
  d_degraded : bool;  (** at least one cluster degraded to its fallback *)
  d_elapsed : float;
}

val optimize :
  ?config:Joinopt.Optimizer.config ->
  ?budget:Milp.Budget.t ->
  ?jobs:int ->
  Relalg.Query.t ->
  result
(** [budget] shares a deadline and cancellation token with the caller
    exactly as in {!Joinopt.Optimizer.optimize}; when absent one is
    created from the configured solver time limit. [jobs] (default 1)
    bounds the worker domains for parallel cluster solves; each cluster
    solve is then pinned to a single domain. Decomposition knobs
    (cluster size, seam heuristic) come from [config.decomp]. The
    result is deterministic for a fixed config when [jobs = 1]; with
    parallel dispatch the cluster *reports* may interleave differently
    but the stitched plan is unchanged (budget slicing aside). *)
