(** Seam layer: orders the clusters of a partitioned query into the
    global join sequence.

    Cross-cluster predicates are grouped by the cluster set they span
    (group selectivity = product of members'). When the contracted
    cluster graph fits the monolithic machinery (<= 62 clusters and
    <= 62 seam groups) each cluster becomes a pseudo-table of its
    estimated result cardinality and the contracted query is ordered by
    IKKBZ or greedy; otherwise a mask-free greedy sweep orders the
    clusters directly. Fully deterministic. *)

type result = {
  sm_order : int array;  (** cluster indices in join order *)
  sm_heuristic : string;
      (** what actually ran: ["ikkbz"], ["greedy"], ["wide-greedy"], or
          ["trivial"] for a single cluster *)
  sm_fallback : bool;
      (** the requested heuristic could not run — a cyclic contracted
          graph demoted IKKBZ to greedy, or the contracted encoding's
          ceilings forced the wide sweep *)
}

val order :
  seam:Joinopt.Optimizer.seam_heuristic -> Relalg.Query.t -> Partition.t -> result
