(* Mask-free left-deep plan costing for queries past the 62-table
   bitmask ceiling.

   [Relalg.Cost_model] — and everything below it ([Card], the MILP
   encoding, Selinger, greedy, annealing) — represents table and
   predicate subsets as int bitmasks, which caps the monolithic pipeline
   at 62 tables. The decomposition subsystem must cost *global* stitched
   plans over 100+ tables, so this module re-implements exactly the
   exact-model semantics of [Cost_model.plan_cost] (unary predicates at
   scan time, every other predicate at its earliest applicable join,
   correlation corrections once all members are applied, identical page
   and operator formulas) over bool-array subsets instead of masks.

   The float operations are performed in the same order as the masked
   implementation — tables in index order, then predicates in index
   order — so for any query both paths can evaluate (<= 62 tables) the
   two costs are bit-identical; test_decomp pins that equivalence. *)

module Q = Relalg.Query
module P = Relalg.Predicate
module C = Relalg.Catalog
module CM = Relalg.Cost_model
module Plan = Relalg.Plan

type estimator = {
  q : Q.t;
  num_real : int;
  (* real predicates then virtual correlation predicates, exactly the
     layout of [Card.estimator] *)
  pred_tables : int array array;
  pred_sels : float array;
  real_unary : bool array;  (* per predicate slot; virtuals are never unary *)
}

let estimator q =
  let m = Q.num_predicates q in
  let real =
    Array.map
      (fun p -> (Array.of_list p.P.pred_tables, p.P.selectivity))
      q.Q.predicates
  in
  let virt =
    Array.map
      (fun c ->
        let tables =
          List.sort_uniq compare
            (List.concat_map
               (fun pi -> q.Q.predicates.(pi).P.pred_tables)
               c.P.corr_members)
        in
        (Array.of_list tables, c.P.corr_correction))
      q.Q.correlations
  in
  let all = Array.append real virt in
  let real_unary =
    Array.mapi
      (fun pi (tables, _) -> pi < m && Array.length tables = 1)
      all
  in
  {
    q;
    num_real = m;
    pred_tables = Array.map fst all;
    pred_sels = Array.map snd all;
    real_unary;
  }

(* Predicates whose every table is present. *)
let applicable e present =
  Array.map (Array.for_all (fun t -> present.(t))) e.pred_tables

let card e ~present ~applied =
  let c = ref 1. in
  Array.iteri
    (fun t tbl -> if present.(t) then c := !c *. tbl.C.tbl_card)
    e.q.Q.tables;
  Array.iteri
    (fun pi sel -> if applied.(pi) then c := !c *. sel)
    e.pred_sels;
  if Float.is_finite !c then !c
  else begin
    (* 100+ raw cardinalities multiply past DBL_MAX before the
       selectivities pull the estimate back down — the masked pipeline
       never sees enough tables to hit this, but wide prefixes do
       routinely. Recompute in log space: same estimate, no transient
       overflow. (Only reachable when the direct product is not finite,
       so the bit-exact-vs-[Cost_model] guarantee on masked-sized
       queries is unaffected.) *)
    let lg = ref 0. in
    Array.iteri
      (fun t tbl -> if present.(t) then lg := !lg +. log tbl.C.tbl_card)
      e.q.Q.tables;
    Array.iteri
      (fun pi sel -> if applied.(pi) then lg := !lg +. log sel)
      e.pred_sels;
    exp !lg
  end

(* Scan-filtered cardinality of one base table: raw card times its
   applicable *real unary* predicate selectivities. *)
let single_card e t =
  let present = Array.make (Q.num_tables e.q) false in
  present.(t) <- true;
  let applied = applicable e present in
  Array.iteri (fun pi a -> applied.(pi) <- a && e.real_unary.(pi)) applied;
  card e ~present ~applied

(* Evaluation cost of unary predicates at their scans (each tests the
   raw table once) — same charge as [Cost_model.scan_charges]. *)
let scan_charges q =
  Array.fold_left
    (fun acc p ->
      match p.P.pred_tables with
      | [ t ] when p.P.eval_cost > 0. ->
        acc +. (p.P.eval_cost *. q.Q.tables.(t).C.tbl_card)
      | _ -> acc)
    0. q.Q.predicates

(* Estimated result cardinality of the whole query with every predicate
   and correlation applied — the pseudo-table cardinality a solved
   cluster contributes to the seam graph. *)
let result_card q =
  let e = estimator q in
  let present = Array.make (Q.num_tables q) true in
  let applied = applicable e present in
  card e ~present ~applied

let plan_cost ?(metric = CM.Operator_costs) ?(pm = CM.default_page_model) q plan =
  (match Plan.validate q plan with Ok () -> () | Error msg -> invalid_arg msg);
  let e = estimator q in
  let n = Q.num_tables q in
  let order = plan.Plan.order in
  let total = ref (scan_charges q) in
  if n >= 2 then begin
    let present = Array.make n false in
    present.(order.(0)) <- true;
    let app_first = applicable e present in
    (* Outer side of the first join: the walk applies only the first
       table's unary predicates; the fresh-predicate ledger sees the
       full applicable set — both exactly as [Cost_model.plan_cost]. *)
    let prev_walk =
      ref (Array.mapi (fun pi a -> a && e.real_unary.(pi)) app_first)
    in
    let prev_eval = ref app_first in
    let outer_card = ref (single_card e order.(0)) in
    for j = 0 to n - 2 do
      let inner = order.(j + 1) in
      let inner_card = single_card e inner in
      present.(inner) <- true;
      let applied_j = applicable e present in
      (* Tuples flowing into the predicates evaluated at this join:
         operands joined, with everything previously applied plus the
         inner table's scan-time unary predicates. *)
      let prev_applied = Array.copy !prev_walk in
      Array.iteri
        (fun pi tables ->
          if
            e.real_unary.(pi)
            && Array.for_all (fun t -> t = inner) tables
            && Array.length tables = 1
          then prev_applied.(pi) <- true)
        e.pred_tables;
      let out_before = card e ~present ~applied:prev_applied in
      let out_after = card e ~present ~applied:applied_j in
      (match metric with
      | CM.Cout -> total := !total +. out_after
      | CM.Operator_costs ->
        total :=
          !total
          +. CM.join_cost plan.Plan.operators.(j) pm ~outer_card:!outer_card ~inner_card);
      (* Non-unary predicates newly applicable at join j, charged on the
         pre-filter output. *)
      let jec = ref 0. in
      for pi = 0 to e.num_real - 1 do
        if
          applied_j.(pi)
          && (not !prev_eval.(pi))
          && (not e.real_unary.(pi))
          && e.q.Q.predicates.(pi).P.eval_cost > 0.
        then jec := !jec +. e.q.Q.predicates.(pi).P.eval_cost
      done;
      (* guard the multiply: a zero charge must stay zero even when the
         operand estimate is infinite (0 * inf is nan) *)
      if !jec > 0. then total := !total +. (!jec *. out_before);
      outer_card := out_after;
      prev_walk := applied_j;
      prev_eval := applied_j
    done
  end;
  !total

(* Intermediate cardinalities along a join order with every applicable
   predicate applied as soon as possible — the wide mirror of
   [Card.prefix_cards]. *)
let prefix_cards q order =
  let e = estimator q in
  let n = Array.length order in
  let present = Array.make (Q.num_tables q) false in
  Array.init n (fun k ->
      present.(order.(k)) <- true;
      let applied = applicable e present in
      card e ~present ~applied)

let optimal_operators ?(pm = CM.default_page_model) q order =
  let e = estimator q in
  let cards = prefix_cards q order in
  let n = Array.length order in
  let operators =
    Array.init (n - 1) (fun j ->
        let outer_card = cards.(j) in
        let inner_card = single_card e order.(j + 1) in
        let candidates =
          [ Plan.Hash_join; Plan.Sort_merge_join; Plan.Block_nested_loop ]
        in
        let best =
          List.fold_left
            (fun best op ->
              let c = CM.join_cost op pm ~outer_card ~inner_card in
              match best with
              | Some (_, bc) when bc <= c -> best
              | _ -> Some (op, c))
            None candidates
        in
        match best with Some (op, _) -> op | None -> Plan.Hash_join)
  in
  Plan.of_order ~operators order
