(** Mask-free left-deep plan costing, for queries past the 62-table
    bitmask ceiling of the monolithic pipeline.

    Semantically identical to {!Relalg.Cost_model} under the basic
    (push-down) model — unary predicates at scan time, every other
    predicate at its earliest applicable join, correlation corrections
    once all members are applied, the same page and operator formulas —
    but table/predicate subsets are bool arrays instead of int masks, so
    any query size is supported. Float operations happen in the same
    order as the masked implementation, so where both paths can evaluate
    (<= 62 tables) the costs are bit-identical. *)

val plan_cost :
  ?metric:Relalg.Cost_model.metric ->
  ?pm:Relalg.Cost_model.page_model ->
  Relalg.Query.t ->
  Relalg.Plan.t ->
  float
(** Exact-model cost of a left-deep plan of any width. Default metric
    [Operator_costs]. Raises [Invalid_argument] when the plan does not
    join the query's tables. *)

val optimal_operators :
  ?pm:Relalg.Cost_model.page_model -> Relalg.Query.t -> int array -> Relalg.Plan.t
(** Completes a join order into a plan by picking the cheapest operator
    for each join independently — the wide mirror of
    {!Relalg.Cost_model.optimal_operators} (same candidate order, so
    ties break identically). Raises [Invalid_argument] on a
    non-permutation. *)

val result_card : Relalg.Query.t -> float
(** Estimated result cardinality of the whole query with every predicate
    and correlation applied — the cardinality a solved cluster
    contributes as a pseudo-table of the seam graph. *)
