(* The decomposition driver: partition, solve clusters, stitch.

   A query past (or configured past) the monolithic threshold is split
   into clusters ({!Partition}), each cluster is solved by the ordinary
   certified MILP pipeline under a slice of the caller's budget, the
   seam layer ({!Seam}) orders the clusters, and the cluster-internal
   orders are concatenated into one global left-deep plan whose
   operators are then re-picked and whose true cost is measured by the
   mask-free model ({!Wide_cost}).

   Budget discipline: every cluster solve runs under [Milp.Budget.sub]
   of the caller's budget — never the raw budget — so one slow cluster
   cannot eat the whole deadline and one SIGINT winds down every
   in-flight cluster (the sub-budgets share the cancellation token).
   The per-cluster slice is remaining / waves, where a wave is one round
   of [jobs] parallel solves.

   Failure discipline: a cluster solve that dies (exception, or the
   {!Milp.Faults.cluster_fails} chaos hook) degrades to the greedy
   heuristic for that cluster only, flagged in its report; the query as
   a whole always gets a plan. *)

module Q = Relalg.Query
module Plan = Relalg.Plan
module Optimizer = Joinopt.Optimizer
module Budget = Milp.Budget

type cluster_report = {
  cr_tables : int array;
  cr_order : int array;
  cr_provenance : string;
  cr_objective : float option;
  cr_bound : float;
  cr_certified : bool;
  cr_degraded : bool;
  cr_seed : string option;
  cr_stopped : string;
  cr_elapsed : float;
}

type result = {
  d_plan : Plan.t;
  d_true_cost : float;
  d_clusters : cluster_report array;
  d_num_clusters : int;
  d_seam : string;
  d_seam_fallback : bool;
  d_degraded : bool;
  d_elapsed : float;
}

let stop_to_string = function
  | Milp.Branch_bound.Completed -> "completed"
  | Milp.Branch_bound.Time_limit -> "time-limit"
  | Milp.Branch_bound.Node_limit -> "node-limit"
  | Milp.Branch_bound.Interrupted -> "interrupted"

(* Map a cluster-local join order to global table indices. *)
let globalize (cl : Partition.cluster) local_order =
  Array.map (fun i -> cl.Partition.cl_tables.(i)) local_order

let trivial_report (cl : Partition.cluster) =
  {
    cr_tables = cl.Partition.cl_tables;
    cr_order = cl.Partition.cl_tables;
    cr_provenance = "trivial";
    cr_objective = None;
    cr_bound = 0.;
    cr_certified = true;
    cr_degraded = false;
    cr_seed = None;
    cr_stopped = "completed";
    cr_elapsed = 0.;
  }

(* The heuristic rung for a cluster whose MILP solve died: the greedy
   order is always available (clusters respect the monolithic ceilings
   by construction) and the report says exactly what happened. *)
let degraded_report (cl : Partition.cluster) ~why ~elapsed =
  {
    cr_tables = cl.Partition.cl_tables;
    cr_order = globalize cl (Dp_opt.Greedy.order cl.Partition.cl_query);
    cr_provenance = why;
    cr_objective = None;
    cr_bound = 0.;
    cr_certified = false;
    cr_degraded = true;
    cr_seed = None;
    cr_stopped = "failed";
    cr_elapsed = elapsed;
  }

let solve_cluster ~config ~budget ~slice (cl : Partition.cluster) =
  let t0 = Budget.now () in
  if Array.length cl.Partition.cl_tables = 1 then trivial_report cl
  else if Milp.Faults.cluster_fails () then
    degraded_report cl ~why:"injected-failure:greedy"
      ~elapsed:(Budget.now () -. t0)
  else begin
    try
      let r =
        Optimizer.optimize ~config
          ~budget:(Budget.sub budget ?limit:slice ())
          cl.Partition.cl_query
      in
      let order =
        match r.Optimizer.plan with
        | Some p -> p.Plan.order
        | None -> Dp_opt.Greedy.order cl.Partition.cl_query
      in
      {
        cr_tables = cl.Partition.cl_tables;
        cr_order = globalize cl order;
        cr_provenance =
          (match r.Optimizer.provenance with
          | Some p -> Optimizer.provenance_to_string p
          | None -> "heuristic");
        cr_objective = r.Optimizer.objective;
        cr_bound = r.Optimizer.bound;
        cr_certified =
          (match r.Optimizer.certificate with
          | Milp.Solver.Certified _ -> true
          | Milp.Solver.Uncertified _ | Milp.Solver.No_incumbent -> false);
        cr_degraded = false;
        cr_seed =
          (match r.Optimizer.seed with
          | Some s -> Some s.Milp.Warm_start.sd_source
          | None -> None);
        cr_stopped = stop_to_string r.Optimizer.stopped;
        cr_elapsed = Budget.now () -. t0;
      }
    with _ ->
      degraded_report cl ~why:"solver-failure:greedy"
        ~elapsed:(Budget.now () -. t0)
  end

let optimize ?(config = Optimizer.default_config) ?budget ?(jobs = 1) q =
  let t0 = Budget.now () in
  let budget =
    match budget with
    | Some b -> b
    | None ->
      Budget.create
        ?limit:config.Optimizer.solver.Milp.Solver.bb.Milp.Branch_bound.time_limit ()
  in
  let pt = Partition.partition ~max_cluster:config.Optimizer.decomp.Optimizer.dc_max_cluster q in
  let nc = Array.length pt.Partition.clusters in
  let nsolve =
    Array.fold_left
      (fun acc c -> if Array.length c.Partition.cl_tables > 1 then acc + 1 else acc)
      0 pt.Partition.clusters
  in
  let jobs = max 1 (min jobs (max 1 nsolve)) in
  (* Cluster solves never re-enter decomposition, and with a parallel
     dispatch each solve stays single-domain — the parallelism budget is
     spent across clusters, not inside one. *)
  let cluster_config =
    let c =
      Optimizer.with_decomp
        { config.Optimizer.decomp with Optimizer.dc_policy = Optimizer.Dc_off }
        config
    in
    if jobs > 1 then Optimizer.with_jobs 1 c else c
  in
  let slice =
    match Budget.remaining budget with
    | None -> None
    | Some r ->
      let waves = (max 1 nsolve + jobs - 1) / jobs in
      Some (r /. float_of_int waves)
  in
  let reports = Array.make nc None in
  let run ci =
    reports.(ci) <-
      Some
        (solve_cluster ~config:cluster_config ~budget ~slice pt.Partition.clusters.(ci))
  in
  if jobs <= 1 then
    for ci = 0 to nc - 1 do
      run ci
    done
  else begin
    let mu = Mutex.create () in
    let cv = Condition.create () in
    let pending = ref nc in
    let pool =
      Milp.Work_pool.create ~jobs ~capacity:(max 1 nc) ~work:(fun ci ->
          (try run ci
           with _ ->
             reports.(ci) <-
               Some
                 (degraded_report pt.Partition.clusters.(ci)
                    ~why:"solver-failure:greedy" ~elapsed:0.));
          Mutex.lock mu;
          decr pending;
          if !pending = 0 then Condition.broadcast cv;
          Mutex.unlock mu)
    in
    for ci = 0 to nc - 1 do
      ignore (Milp.Work_pool.submit ~block:true pool ci)
    done;
    Mutex.lock mu;
    while !pending > 0 do
      Condition.wait cv mu
    done;
    Mutex.unlock mu;
    Milp.Work_pool.shutdown pool;
    Milp.Work_pool.join pool
  end;
  let reports =
    Array.map
      (function
        | Some r -> r
        | None -> failwith "Decompose.optimize: missing cluster report")
      reports
  in
  let seam = Seam.order ~seam:config.Optimizer.decomp.Optimizer.dc_seam q pt in
  let order =
    Array.concat
      (Array.to_list (Array.map (fun ci -> reports.(ci).cr_order) seam.Seam.sm_order))
  in
  let plan = Wide_cost.optimal_operators ~pm:config.Optimizer.pm q order in
  let true_cost =
    Wide_cost.plan_cost
      ~metric:(Optimizer.exact_metric config.Optimizer.cost)
      ~pm:config.Optimizer.pm q plan
  in
  {
    d_plan = plan;
    d_true_cost = true_cost;
    d_clusters = reports;
    d_num_clusters = nc;
    d_seam = seam.Seam.sm_heuristic;
    d_seam_fallback = seam.Seam.sm_fallback;
    d_degraded = Array.exists (fun r -> r.cr_degraded) reports;
    d_elapsed = Budget.now () -. t0;
  }
